package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"mwskit/internal/attr"
	"mwskit/internal/device"
	"mwskit/internal/rclient"
	"mwskit/internal/wal"
	"mwskit/internal/wire"
)

// newTestDeployment builds a started deployment on the fast test preset.
func newTestDeployment(t *testing.T) *Deployment {
	t.Helper()
	dep, err := NewDeployment(DeploymentConfig{
		Dir:    t.TempDir(),
		Preset: "test",
		Sync:   wal.SyncNever,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dep.Close() })
	if err := dep.Start(); err != nil {
		t.Fatal(err)
	}
	return dep
}

func dialBoth(t *testing.T, dep *Deployment) (mwsConn, pkgConn *wire.Client) {
	t.Helper()
	m, err := dep.DialMWS()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	p, err := dep.DialPKG()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return m, p
}

func newTestDevice(t *testing.T, dep *Deployment, id string) *device.Device {
	t.Helper()
	key, err := dep.MWS.RegisterDevice(id)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dep.NewDevice(id, key)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestFigure4ProtocolInteractions (experiment E5) runs the full protocol
// of Figure 4 over real TCP: SD–MWS deposit, MWS–RC retrieval with token
// issuance, RC–PKG key extraction, and client-side decryption.
func TestFigure4ProtocolInteractions(t *testing.T) {
	dep := newTestDeployment(t)
	mwsConn, pkgConn := dialBoth(t, dep)

	// Phase 0 — registration (out-of-band in the paper).
	sd := newTestDevice(t, dep, "smart-meter-0042")
	rc, err := dep.EnrollClient("c-services", []byte("s3cret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Grant("c-services", "ELECTRIC-APTCOMPLEX-SV-CA"); err != nil {
		t.Fatal(err)
	}

	// Phase 1 — SD–MWS: deposit an encrypted reading.
	reading := []byte(`{"meter":"smart-meter-0042","kwh":42.7,"ts":1278000000}`)
	seq, err := sd.Deposit(mwsConn, "ELECTRIC-APTCOMPLEX-SV-CA", reading)
	if err != nil {
		t.Fatalf("deposit: %v", err)
	}
	if dep.MWS.MessageCount() != 1 {
		t.Fatal("message not warehoused")
	}

	// Phase 2+3 — MWS–RC and RC–PKG: retrieve, extract, decrypt.
	msgs, err := rc.RetrieveAndDecrypt(mwsConn, pkgConn, 0, 0)
	if err != nil {
		t.Fatalf("retrieve+decrypt: %v", err)
	}
	if len(msgs) != 1 {
		t.Fatalf("got %d messages", len(msgs))
	}
	if msgs[0].Seq != seq || msgs[0].DeviceID != "smart-meter-0042" {
		t.Fatalf("message metadata wrong: %+v", msgs[0])
	}
	if !bytes.Equal(msgs[0].Payload, reading) {
		t.Fatal("decrypted payload differs from the deposited reading")
	}
}

// TestFigure2KeyRetrieval (experiment E3) checks the key-retrieval flow of
// Figure 2 step by step, asserting the intermediate artifacts.
func TestFigure2KeyRetrieval(t *testing.T) {
	dep := newTestDeployment(t)
	mwsConn, pkgConn := dialBoth(t, dep)

	sd := newTestDevice(t, dep, "meter")
	rc, err := dep.EnrollClient("utility", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Grant("utility", "ELECTRIC-Z"); err != nil {
		t.Fatal(err)
	}
	if _, err := sd.Deposit(mwsConn, "ELECTRIC-Z", []byte("payload")); err != nil {
		t.Fatal(err)
	}

	// Step 1: retrieve returns ciphertext + token, NOT plaintext.
	ret, err := rc.Retrieve(mwsConn, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ret.Items) != 1 {
		t.Fatalf("%d items", len(ret.Items))
	}
	if bytes.Contains(ret.Items[0].Ciphertext, []byte("payload")) {
		t.Fatal("MWS delivered plaintext")
	}
	// The item references the attribute only via AID.
	if ret.Items[0].AID == 0 {
		t.Fatal("missing AID")
	}

	// Step 2: PKG issues the private key for (AID, nonce).
	keys, items, err := rc.FetchKeys(pkgConn, ret)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || len(keys) != 1 {
		t.Fatalf("keys=%d items=%d", len(keys), len(items))
	}

	// Step 3: decrypt locally.
	for _, sk := range keys {
		m, err := rc.Decrypt(&ret.Items[0], sk)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(m.Payload, []byte("payload")) {
			t.Fatal("decryption mismatch")
		}
	}
}

// TestFigure1Scenario (experiment E2) reproduces the utility-company
// scenario: C-Services reads all meters, Electric & Gas reads electric +
// gas, Water & Resources reads water only.
func TestFigure1Scenario(t *testing.T) {
	dep := newTestDeployment(t)
	mwsConn, pkgConn := dialBoth(t, dep)

	const (
		attrElectric = attr.Attribute("ELECTRIC-APTCOMPLEX-SV-CA")
		attrWater    = attr.Attribute("WATER-APTCOMPLEX-SV-CA")
		attrGas      = attr.Attribute("GAS-APTCOMPLEX-SV-CA")
	)

	// Three meters in the apartment complex.
	electric := newTestDevice(t, dep, "electric-meter")
	water := newTestDevice(t, dep, "water-meter")
	gas := newTestDevice(t, dep, "gas-meter")

	// Three companies with the paper's access matrix.
	cServices, err := dep.EnrollClient("C-Services", []byte("pw-c"))
	if err != nil {
		t.Fatal(err)
	}
	eAndG, err := dep.EnrollClient("Electric-and-Gas-Co", []byte("pw-eg"))
	if err != nil {
		t.Fatal(err)
	}
	wAndR, err := dep.EnrollClient("Water-and-Resources-Co", []byte("pw-wr"))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []attr.Attribute{attrElectric, attrWater, attrGas} {
		if _, err := dep.Grant("C-Services", a); err != nil {
			t.Fatal(err)
		}
	}
	for _, a := range []attr.Attribute{attrElectric, attrGas} {
		if _, err := dep.Grant("Electric-and-Gas-Co", a); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dep.Grant("Water-and-Resources-Co", attrWater); err != nil {
		t.Fatal(err)
	}

	// Each meter deposits two readings.
	for i := 0; i < 2; i++ {
		if _, err := electric.Deposit(mwsConn, attrElectric, []byte(fmt.Sprintf("kwh=%d", i))); err != nil {
			t.Fatal(err)
		}
		if _, err := water.Deposit(mwsConn, attrWater, []byte(fmt.Sprintf("m3=%d", i))); err != nil {
			t.Fatal(err)
		}
		if _, err := gas.Deposit(mwsConn, attrGas, []byte(fmt.Sprintf("therm=%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	check := func(rc *rclient.Client, wantCount int, wantDevices map[string]bool) {
		t.Helper()
		msgs, err := rc.RetrieveAndDecrypt(mwsConn, pkgConn, 0, 0)
		if err != nil {
			t.Fatalf("%s: %v", rc.ID(), err)
		}
		if len(msgs) != wantCount {
			t.Fatalf("%s: got %d messages, want %d", rc.ID(), len(msgs), wantCount)
		}
		for _, m := range msgs {
			if !wantDevices[m.DeviceID] {
				t.Fatalf("%s: received message from unauthorized device %s", rc.ID(), m.DeviceID)
			}
		}
	}
	check(cServices, 6, map[string]bool{"electric-meter": true, "water-meter": true, "gas-meter": true})
	check(eAndG, 4, map[string]bool{"electric-meter": true, "gas-meter": true})
	check(wAndR, 2, map[string]bool{"water-meter": true})
}

// TestFigure3Architecture (experiment E4) asserts the architectural
// separation of Figure 3: each component is reachable and enforces its
// role — and in particular the MWS itself cannot decrypt what it stores.
func TestFigure3Architecture(t *testing.T) {
	dep := newTestDeployment(t)
	mwsConn, pkgConn := dialBoth(t, dep)

	sd := newTestDevice(t, dep, "meter")
	rc, err := dep.EnrollClient("rc", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Grant("rc", "A1"); err != nil {
		t.Fatal(err)
	}
	secret := []byte("the MWS must never read this")
	if _, err := sd.Deposit(mwsConn, "A1", secret); err != nil {
		t.Fatal(err)
	}

	// SDA stored it; MD holds ciphertext only (§III i).
	if dep.MWS.MessageCount() != 1 {
		t.Fatal("SDA/MD path broken")
	}
	stored := dep.MWS.PolicyTable()
	if len(stored) != 1 {
		t.Fatal("PD path broken")
	}
	// Scan raw warehoused bytes for the plaintext.
	resp, err := rc.Retrieve(mwsConn, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(resp.Items[0].Ciphertext, secret) {
		t.Fatal("message database holds plaintext")
	}
	// Gatekeeper + TG: token present; PKG extract completes; full read OK.
	msgs, err := rc.RetrieveAndDecrypt(mwsConn, pkgConn, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || !bytes.Equal(msgs[0].Payload, secret) {
		t.Fatal("end-to-end path broken")
	}
	// PKG serves params (SD bootstrap path).
	params, err := device.FetchParams(pkgConn)
	if err != nil {
		t.Fatal(err)
	}
	if !params.PPub.Equal(dep.Params().PPub) {
		t.Fatal("PKG served wrong parameters")
	}
}

// TestRevocationEndToEnd (experiment E7) verifies requirement §III(iii):
// after revocation an RC can no longer access *future* messages, with no
// change to any smart device.
func TestRevocationEndToEnd(t *testing.T) {
	dep := newTestDeployment(t)
	mwsConn, pkgConn := dialBoth(t, dep)

	sd := newTestDevice(t, dep, "meter")
	rc, err := dep.EnrollClient("C-Services", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Grant("C-Services", "ELECTRIC-X"); err != nil {
		t.Fatal(err)
	}

	// Before revocation: message flows.
	if _, err := sd.Deposit(mwsConn, "ELECTRIC-X", []byte("before")); err != nil {
		t.Fatal(err)
	}
	msgs, err := rc.RetrieveAndDecrypt(mwsConn, pkgConn, 0, 0)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("pre-revocation: %v, %d msgs", err, len(msgs))
	}

	// Revoke. The device is untouched and keeps depositing.
	if err := dep.Revoke("C-Services", "ELECTRIC-X"); err != nil {
		t.Fatal(err)
	}
	if _, err := sd.Deposit(mwsConn, "ELECTRIC-X", []byte("after")); err != nil {
		t.Fatal(err)
	}

	// After revocation: the RC sees nothing new.
	time.Sleep(10 * time.Millisecond) // distinct authenticator timestamp
	msgs2, err := rc.RetrieveAndDecrypt(mwsConn, pkgConn, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs2) != 0 {
		t.Fatalf("revoked RC still received %d messages", len(msgs2))
	}
}

// TestStaleTicketCannotExtractNewNonces drives the deeper revocation
// property: even an RC that hoards its last valid ticket cannot decrypt
// future messages, because every message carries a fresh nonce whose AID
// resolution the hoarded ticket does provide — but the MWS never hands the
// revoked RC the new message envelopes in the first place, and old
// private keys are useless against new nonces.
func TestStaleTicketCannotExtractNewNonces(t *testing.T) {
	dep := newTestDeployment(t)
	mwsConn, pkgConn := dialBoth(t, dep)

	sd := newTestDevice(t, dep, "meter")
	rc, err := dep.EnrollClient("rc", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Grant("rc", "A1"); err != nil {
		t.Fatal(err)
	}
	if _, err := sd.Deposit(mwsConn, "A1", []byte("first")); err != nil {
		t.Fatal(err)
	}
	ret, err := rc.Retrieve(mwsConn, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys, _, err := rc.FetchKeys(pkgConn, ret)
	if err != nil {
		t.Fatal(err)
	}
	// Now a new message arrives with a fresh nonce.
	if _, err := sd.Deposit(mwsConn, "A1", []byte("second")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	ret2, err := rc.Retrieve(mwsConn, ret.Items[0].Seq+1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ret2.Items) != 1 {
		t.Fatalf("%d new items", len(ret2.Items))
	}
	// The old private key (for the old nonce) must fail against the new
	// message: decryption errors out.
	var oldKey = func() (k interface{ ID() }) { return nil }
	_ = oldKey
	for _, sk := range keys {
		if _, err := rc.Decrypt(&ret2.Items[0], sk); err == nil {
			t.Fatal("old per-message key decrypted a new message — nonce freshness broken")
		}
	}
}

// TestCrossClientIsolation: an RC must not be able to decrypt a message
// warehoused for an attribute it does not hold, even if it obtains the
// raw envelope out of band.
func TestCrossClientIsolation(t *testing.T) {
	dep := newTestDeployment(t)
	mwsConn, pkgConn := dialBoth(t, dep)

	sd := newTestDevice(t, dep, "meter")
	alice, err := dep.EnrollClient("alice-co", []byte("pw-a"))
	if err != nil {
		t.Fatal(err)
	}
	bob, err := dep.EnrollClient("bob-co", []byte("pw-b"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Grant("alice-co", "ELECTRIC-X"); err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Grant("bob-co", "WATER-X"); err != nil {
		t.Fatal(err)
	}
	if _, err := sd.Deposit(mwsConn, "ELECTRIC-X", []byte("for alice only")); err != nil {
		t.Fatal(err)
	}

	// Alice reads it.
	msgs, err := alice.RetrieveAndDecrypt(mwsConn, pkgConn, 0, 0)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("alice: %v, %d", err, len(msgs))
	}
	// Bob retrieves: policy filter returns nothing.
	got, err := bob.RetrieveAndDecrypt(mwsConn, pkgConn, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("bob received alice's messages")
	}
	// Even with the raw envelope (obtained out of band), Bob's ticket
	// cannot extract a key for an AID he does not hold: simulate by
	// asking the PKG with a bogus AID through Bob's valid session.
	aliceRet, err := alice.Retrieve(mwsConn, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	bobRet, err := bob.Retrieve(mwsConn, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Bob replays Alice's item identifiers through his own ticket.
	forged := *bobRet
	forged.Items = aliceRet.Items
	_, _, err = bob.FetchKeys(pkgConn, &forged)
	var em *wire.ErrorMsg
	if !errors.As(err, &em) || em.Code != wire.CodeAuth {
		t.Fatalf("PKG honored a foreign AID through bob's ticket: %v", err)
	}
}

func TestDeploymentRestartKeepsDecryptability(t *testing.T) {
	dir := t.TempDir()
	cfg := DeploymentConfig{Dir: dir, Preset: "test", Sync: wal.SyncNever}
	dep, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Start(); err != nil {
		t.Fatal(err)
	}
	mwsConn, err := dep.DialMWS()
	if err != nil {
		t.Fatal(err)
	}
	key, err := dep.MWS.RegisterDevice("meter")
	if err != nil {
		t.Fatal(err)
	}
	sd, err := dep.NewDevice("meter", key)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := dep.EnrollClient("rc", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Grant("rc", "A1"); err != nil {
		t.Fatal(err)
	}
	if _, err := sd.Deposit(mwsConn, "A1", []byte("survives restart")); err != nil {
		t.Fatal(err)
	}
	mwsConn.Close()
	if err := dep.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart the whole deployment from disk.
	dep2, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer dep2.Close()
	if err := dep2.Start(); err != nil {
		t.Fatal(err)
	}
	m2, err := dep2.DialMWS()
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	p2, err := dep2.DialPKG()
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()

	msgs, err := rc.RetrieveAndDecrypt(m2, p2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || !bytes.Equal(msgs[0].Payload, []byte("survives restart")) {
		t.Fatal("message not decryptable after full restart")
	}
}

func TestDeploymentConfigValidation(t *testing.T) {
	if _, err := NewDeployment(DeploymentConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewDeployment(DeploymentConfig{Dir: t.TempDir(), Preset: "bogus"}); err == nil {
		t.Error("bogus preset accepted")
	}
	if _, err := NewDeployment(DeploymentConfig{Dir: t.TempDir(), Preset: "test", Scheme: "ROT13"}); err == nil {
		t.Error("bogus scheme accepted")
	}
}

func TestPaperCipherEndToEnd(t *testing.T) {
	// The prototype used DES (§V.C); verify the full pipeline with the
	// paper-faithful cipher.
	dep, err := NewDeployment(DeploymentConfig{
		Dir:    t.TempDir(),
		Preset: "test",
		Scheme: "DES-CBC-HMAC",
		Sync:   wal.SyncNever,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if err := dep.Start(); err != nil {
		t.Fatal(err)
	}
	mwsConn, pkgConn := dialBoth(t, dep)
	sd := newTestDevice(t, dep, "meter")
	rc, err := dep.EnrollClient("rc", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Grant("rc", "A1"); err != nil {
		t.Fatal(err)
	}
	if _, err := sd.Deposit(mwsConn, "A1", []byte("des payload")); err != nil {
		t.Fatal(err)
	}
	msgs, err := rc.RetrieveAndDecrypt(mwsConn, pkgConn, 0, 0)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("%v, %d msgs", err, len(msgs))
	}
	if !bytes.Equal(msgs[0].Payload, []byte("des payload")) {
		t.Fatal("DES pipeline mismatch")
	}
}
