// Package core is the public face of mwskit: it assembles the paper's
// four parties — Message Warehousing Service, Private Key Generator,
// smart devices (depositing clients), and receiving clients — into a
// deployable system, and offers the end-to-end operations a downstream
// application calls:
//
//	dep, _ := core.NewDeployment(core.DeploymentConfig{Dir: dir})
//	defer dep.Close()
//	dep.Start()                                  // bind TCP listeners
//	key, _ := dep.MWS.RegisterDevice("meter-1")
//	sd, _ := dep.NewDevice("meter-1", key)
//	sd.Deposit(mwsConn, "ELECTRIC-APT-SV-CA", reading)
//	rc, _ := dep.NewReceivingClient("c-services", password)
//	msgs, _ := rc.RetrieveAndDecrypt(mwsConn, pkgConn, 0, 0)
//
// Everything below this package is exercised through it: the pairing and
// BF-IBE stack, the symmetric layer, the WAL-backed stores, the policy
// and user databases, the ticket machinery, and the wire protocol.
package core

import (
	"crypto/rand"
	"crypto/rsa"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"path/filepath"
	"time"

	"mwskit/internal/attr"
	"mwskit/internal/bfibe"
	"mwskit/internal/device"
	"mwskit/internal/keyserver"
	"mwskit/internal/metrics"
	"mwskit/internal/mws"
	"mwskit/internal/obsv"
	"mwskit/internal/rclient"
	"mwskit/internal/storage"
	"mwskit/internal/symenc"
	"mwskit/internal/wire"
)

// DeploymentConfig configures a full MWS + PKG deployment.
type DeploymentConfig struct {
	// Dir is the root data directory (MWS and PKG stores live beneath it).
	Dir string
	// Preset selects pairing parameters: "test", "bf80" (default), "bf112".
	Preset string
	// Scheme names the symmetric scheme devices use by default
	// (default "AES-128-GCM"; the paper's prototype used DES).
	Scheme string
	// FreshnessWindow bounds protocol timestamp skew (default 2 minutes).
	FreshnessWindow time.Duration
	// RequestTimeout bounds each network request end to end; a handler
	// past the deadline is cut off and the client receives a structured
	// CodeTimeout error frame (0 = no bound).
	RequestTimeout time.Duration
	// IdleTimeout disconnects a connection that sits silent between
	// frames (0 = no bound).
	IdleTimeout time.Duration
	// MaxConns caps concurrently served connections per listener; excess
	// connections are rejected with CodeUnavailable (0 = no cap).
	MaxConns int
	// Sync selects store durability (default SyncAlways; tests and
	// benchmarks use SyncNever).
	Sync storage.SyncPolicy
	// Storage selects and tunes the MWS persistence backend (zero value:
	// the local single-store layout). The PKG's small master-key store
	// always uses the standalone local KV.
	Storage storage.Options
	// RSABits sizes client token-wrapping keys (default 2048).
	RSABits int
	// Rand is the entropy source (default crypto/rand).
	Rand io.Reader
	// Now is the clock (default time.Now).
	Now func() time.Time
	// Logger receives operational logs (nil discards).
	Logger *slog.Logger
	// MWSTracer and PKGTracer record request spans for the respective
	// services (slow-request log, TTrace, debug listener); nil disables
	// tracing at zero cost.
	MWSTracer *obsv.Tracer
	PKGTracer *obsv.Tracer
}

// Deployment is a co-hosted MWS + PKG pair sharing a ticket key — the
// paper's full server side.
type Deployment struct {
	MWS *mws.Service
	PKG *keyserver.Service

	cfg       DeploymentConfig
	scheme    symenc.Scheme
	mwsServer *wire.Server
	pkgServer *wire.Server
	mwsAddr   net.Addr
	pkgAddr   net.Addr
}

// NewDeployment opens (or creates) a deployment rooted at cfg.Dir. The
// MWS–PKG shared key is generated on first start and persisted under the
// deployment directory, mirroring the paper's assumption that the two
// services share a long-term secret.
func NewDeployment(cfg DeploymentConfig) (*Deployment, error) {
	if cfg.Dir == "" {
		return nil, errors.New("core: Dir is required")
	}
	if cfg.Preset == "" {
		cfg.Preset = "bf80"
	}
	if cfg.Scheme == "" {
		cfg.Scheme = "AES-128-GCM"
	}
	if cfg.RSABits == 0 {
		cfg.RSABits = 2048
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Reader
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	scheme, err := symenc.ByName(cfg.Scheme)
	if err != nil {
		return nil, err
	}
	sharedKey, err := loadOrCreateSharedKey(filepath.Join(cfg.Dir, "shared"), cfg.Rand, cfg.Sync)
	if err != nil {
		return nil, err
	}
	p, err := keyserver.New(keyserver.Config{
		Dir:             filepath.Join(cfg.Dir, "pkg"),
		Preset:          cfg.Preset,
		MWSPKGKey:       sharedKey,
		FreshnessWindow: cfg.FreshnessWindow,
		RequestTimeout:  cfg.RequestTimeout,
		Sync:            cfg.Sync,
		Rand:            cfg.Rand,
		Now:             cfg.Now,
		Logger:          cfg.Logger,
		Tracer:          cfg.PKGTracer,
	})
	if err != nil {
		return nil, err
	}
	m, err := mws.New(mws.Config{
		Dir:             filepath.Join(cfg.Dir, "mws"),
		MWSPKGKey:       sharedKey,
		FreshnessWindow: cfg.FreshnessWindow,
		RequestTimeout:  cfg.RequestTimeout,
		Sync:            cfg.Sync,
		Rand:            cfg.Rand,
		Now:             cfg.Now,
		Logger:          cfg.Logger,
		Tracer:          cfg.MWSTracer,
		Storage:         cfg.Storage,
		IBEParams:       p.Params(), // enables IBS-authenticated deposits
	})
	if err != nil {
		p.Close()
		return nil, err
	}
	return &Deployment{MWS: m, PKG: p, cfg: cfg, scheme: scheme}, nil
}

// loadOrCreateSharedKey persists the MWS–PKG ticket key in a tiny KV of
// its own so restarts keep old tickets decryptable.
func loadOrCreateSharedKey(dir string, rng io.Reader, sync storage.SyncPolicy) ([]byte, error) {
	kv, err := openSharedKV(dir, sync)
	if err != nil {
		return nil, err
	}
	defer kv.Close()
	if k, ok := kv.Get("mws-pkg-key"); ok {
		return k, nil
	}
	k := make([]byte, 32)
	if _, err := io.ReadFull(rng, k); err != nil {
		return nil, err
	}
	if err := kv.Put("mws-pkg-key", k); err != nil {
		return nil, err
	}
	return k, nil
}

// Start binds both services to ephemeral loopback ports (or the given
// addresses via StartAt). Safe to skip entirely for in-process use.
func (d *Deployment) Start() error {
	return d.StartAt("127.0.0.1:0", "127.0.0.1:0")
}

// serverOptions translates the deployment's transport limits to wire
// server options.
func (d *Deployment) serverOptions() []wire.ServerOption {
	return []wire.ServerOption{
		wire.WithIdleTimeout(d.cfg.IdleTimeout),
		wire.WithMaxConns(d.cfg.MaxConns),
	}
}

// StartAt binds the MWS and PKG listeners to explicit addresses.
func (d *Deployment) StartAt(mwsAddr, pkgAddr string) error {
	opts := d.serverOptions()
	srv, bound, err := d.MWS.ListenAndServe(mwsAddr, opts...)
	if err != nil {
		return err
	}
	d.mwsServer, d.mwsAddr = srv, bound
	psrv, pbound, err := d.PKG.ListenAndServe(pkgAddr, opts...)
	if err != nil {
		srv.Close()
		d.mwsServer = nil
		return err
	}
	d.pkgServer, d.pkgAddr = psrv, pbound
	return nil
}

// MWSAddr returns the bound MWS address (nil before Start).
func (d *Deployment) MWSAddr() net.Addr { return d.mwsAddr }

// PKGAddr returns the bound PKG address (nil before Start).
func (d *Deployment) PKGAddr() net.Addr { return d.pkgAddr }

// DialMWS opens a client connection to the deployment's MWS listener.
func (d *Deployment) DialMWS() (*wire.Client, error) {
	if d.mwsAddr == nil {
		return nil, errors.New("core: deployment not started")
	}
	return wire.Dial(d.mwsAddr.String())
}

// DialPKG opens a client connection to the deployment's PKG listener.
func (d *Deployment) DialPKG() (*wire.Client, error) {
	if d.pkgAddr == nil {
		return nil, errors.New("core: deployment not started")
	}
	return wire.Dial(d.pkgAddr.String())
}

// Close stops the listeners (if started) and releases all stores.
func (d *Deployment) Close() error {
	var errs []error
	if d.mwsServer != nil {
		errs = append(errs, d.mwsServer.Close())
	}
	if d.pkgServer != nil {
		errs = append(errs, d.pkgServer.Close())
	}
	errs = append(errs, d.MWS.Close(), d.PKG.Close())
	return errors.Join(errs...)
}

// MetricsSnapshot returns a point-in-time per-op view across both
// services, keyed "mws.<Op>" / "pkg.<Op>" — the observable surface the
// paper's §III(iv) scalability requirement implies. Ops appear once they
// have served at least one request.
func (d *Deployment) MetricsSnapshot() map[string]metrics.OpSnapshot {
	out := make(map[string]metrics.OpSnapshot)
	for op, s := range d.MWS.Metrics() {
		out["mws."+op] = s
	}
	for op, s := range d.PKG.Metrics() {
		out["pkg."+op] = s
	}
	return out
}

// Params returns the deployment's public IBE parameters.
func (d *Deployment) Params() *bfibe.Params { return d.PKG.Params() }

// NewDevice builds a device client bound to this deployment's parameters.
// The macKey is the value RegisterDevice returned.
func (d *Deployment) NewDevice(id string, macKey []byte, opts ...device.Option) (*device.Device, error) {
	all := append([]device.Option{device.WithScheme(d.scheme), device.WithRand(d.cfg.Rand), device.WithClock(d.cfg.Now)}, opts...)
	return device.New(id, macKey, d.Params(), all...)
}

// NewSigningDevice enrolls a device under identity-based-signature
// authentication: the PKG extracts the device's signing key and no shared
// MAC key is installed at the MWS (§VIII future work, implemented).
func (d *Deployment) NewSigningDevice(id string, opts ...device.Option) (*device.Device, error) {
	sk, err := d.PKG.ExtractDeviceSigningKey(id)
	if err != nil {
		return nil, err
	}
	all := append([]device.Option{device.WithScheme(d.scheme), device.WithRand(d.cfg.Rand), device.WithClock(d.cfg.Now)}, opts...)
	return device.NewSigning(id, sk, d.Params(), all...)
}

// EnrollClient registers a receiving client end to end: it generates the
// client's RSA keypair, registers identity + password + public key with
// the MWS, and returns a ready-to-use client handle. Applications that
// manage their own keys can use MWS.RegisterClient directly.
func (d *Deployment) EnrollClient(id string, password []byte) (*rclient.Client, error) {
	priv, err := rsa.GenerateKey(d.cfg.Rand, d.cfg.RSABits)
	if err != nil {
		return nil, fmt.Errorf("core: client keygen: %w", err)
	}
	if err := d.MWS.RegisterClient(id, password, &priv.PublicKey); err != nil {
		return nil, err
	}
	return rclient.New(id, password, priv, d.Params(),
		rclient.WithRand(d.cfg.Rand), rclient.WithClock(d.cfg.Now))
}

// Grant forwards to the MWS policy database.
func (d *Deployment) Grant(clientID string, a attr.Attribute) (attr.ID, error) {
	return d.MWS.Grant(clientID, a)
}

// Revoke forwards to the MWS policy database (§III iii).
func (d *Deployment) Revoke(clientID string, a attr.Attribute) error {
	return d.MWS.Revoke(clientID, a)
}
