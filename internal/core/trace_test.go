package core

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"
	"time"

	"mwskit/internal/obsv"
	"mwskit/internal/wal"
	"mwskit/internal/wire"
)

// TestTracePropagationOverTCP is the end-to-end stitching test: a client
// process generates a trace ID, negotiates protocol v2, and deposits; the
// server — reached only over a real TCP connection, exactly as a separate
// mwsd process would be — must record its stage spans under the client's
// trace ID, queryable back through the TTrace introspection op.
func TestTracePropagationOverTCP(t *testing.T) {
	var slowBuf bytes.Buffer
	slowLog := slog.New(slog.NewTextHandler(&slowBuf, &slog.HandlerOptions{Level: slog.LevelWarn}))
	// 1ns threshold: every request is "slow", so the deposit's span tree
	// must show up in the dump.
	mwsTracer := obsv.NewTracer("mws", 256, time.Nanosecond, slowLog)

	dep, err := NewDeployment(DeploymentConfig{
		Dir:       t.TempDir(),
		Preset:    "test",
		Sync:      wal.SyncNever,
		MWSTracer: mwsTracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dep.Close() })
	if err := dep.Start(); err != nil {
		t.Fatal(err)
	}
	mwsConn, _ := dialBoth(t, dep)
	sd := newTestDevice(t, dep, "meter-trace")

	// Client side: own tracer, own root span — the "other process".
	ok, err := mwsConn.EnableTrace(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("server rejected protocol v2")
	}
	clientTracer := obsv.NewTracer("smartdev", 64, 0, nil)
	ctx, root := clientTracer.StartRoot(context.Background(), "deposit")
	if _, err := sd.DepositContext(ctx, mwsConn, "ELECTRIC-APTCOMPLEX-SV-CA", []byte("reading=1")); err != nil {
		t.Fatal(err)
	}
	root.End()
	traceID := root.Context().TraceID

	// Query the server's ring back over the same wire connection.
	resp, err := mwsConn.Do(wire.Frame{Type: wire.TTrace,
		Payload: (&wire.TraceRequest{TraceID: traceID}).Marshal()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != wire.TTraceResp {
		t.Fatalf("response type = %d, want TTraceResp", resp.Type)
	}
	tr, err := wire.UnmarshalTraceResponse(resp.Payload)
	if err != nil {
		t.Fatal(err)
	}

	// The server-side tree alone must show the named pipeline stages,
	// each with a measured (non-zero) duration, all under the client's
	// trace ID.
	stages := map[string]time.Duration{}
	for _, s := range tr.Spans {
		if s.TraceID != traceID {
			t.Fatalf("span %q carries trace %d, want %d", s.Name, s.TraceID, traceID)
		}
		if s.Service != "mws" {
			t.Fatalf("span %q carries service %q, want mws", s.Name, s.Service)
		}
		stages[s.Name] = s.Duration
	}
	for _, want := range []string{"Deposit", "auth", "replay", "store.write", "wal.append"} {
		dur, found := stages[want]
		if !found {
			t.Errorf("stage %q missing from TTrace reply (got %v)", want, stages)
		} else if dur <= 0 {
			t.Errorf("stage %q has no measured duration", want)
		}
	}

	// Stitching: the server's request root must be parented to the
	// client's rpc.deposit span, not float free.
	var rpcSpanID uint64
	for _, s := range clientTracer.Snapshot(0, traceID) {
		if s.Name == "rpc.deposit" {
			rpcSpanID = s.SpanID
		}
	}
	if rpcSpanID == 0 {
		t.Fatal("client tracer recorded no rpc.deposit span")
	}
	var serverRootParent uint64
	for _, s := range tr.Spans {
		if s.Name == "Deposit" {
			serverRootParent = s.ParentID
		}
	}
	if serverRootParent != rpcSpanID {
		t.Errorf("server root parent = %d, want client rpc.deposit span %d", serverRootParent, rpcSpanID)
	}

	// The slow-request dump (threshold 1ns) must contain the same tree.
	out := slowBuf.String()
	for _, want := range []string{"slow request", "store.write", "wal.append"} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-request dump missing %q:\n%s", want, out)
		}
	}
}

// TestUntracedClientUnaffected pins the compatibility half: a plain v1
// client against a tracer-enabled server deposits fine and leaves no
// trace-stitched spans (the server may still record its own roots).
func TestUntracedClientUnaffected(t *testing.T) {
	mwsTracer := obsv.NewTracer("mws", 64, 0, nil)
	dep, err := NewDeployment(DeploymentConfig{
		Dir:       t.TempDir(),
		Preset:    "test",
		Sync:      wal.SyncNever,
		MWSTracer: mwsTracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dep.Close() })
	if err := dep.Start(); err != nil {
		t.Fatal(err)
	}
	mwsConn, _ := dialBoth(t, dep)
	sd := newTestDevice(t, dep, "meter-v1")
	if _, err := sd.Deposit(mwsConn, "ELECTRIC-APTCOMPLEX-SV-CA", []byte("reading=2")); err != nil {
		t.Fatal(err)
	}
	for _, s := range mwsTracer.Snapshot(0, 0) {
		if s.Name == "Deposit" && s.ParentID != 0 {
			t.Errorf("v1 deposit span claims a remote parent: %+v", s)
		}
	}
}
