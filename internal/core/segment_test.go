package core

import (
	"bytes"
	"testing"

	"mwskit/internal/attr"
	"mwskit/internal/rclient"
	"mwskit/internal/segment"
)

// TestSegmentedDepositEndToEnd drives the §VIII segmentation scenario:
// one device message split into consumption / errors / events parts,
// each toward its own attribute. The retailer reads only consumption,
// the operator only errors, and the full-service company reassembles
// everything — confidentiality between parts is preserved by IBE, not
// by trust in the warehouse.
func TestSegmentedDepositEndToEnd(t *testing.T) {
	dep := newTestDeployment(t)
	mwsConn, pkgConn := dialBoth(t, dep)

	sd := newTestDevice(t, dep, "smart-meter")

	retailer, err := dep.EnrollClient("retailer", []byte("pw-r"))
	if err != nil {
		t.Fatal(err)
	}
	operator, err := dep.EnrollClient("operator", []byte("pw-o"))
	if err != nil {
		t.Fatal(err)
	}
	fullService, err := dep.EnrollClient("full-service", []byte("pw-f"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Grant("retailer", "CONSUMPTION-SITE1"); err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Grant("operator", "ERRORS-SITE1"); err != nil {
		t.Fatal(err)
	}
	for _, a := range []attr.Attribute{"CONSUMPTION-SITE1", "ERRORS-SITE1", "EVENTS-SITE1"} {
		if _, err := dep.Grant("full-service", a); err != nil {
			t.Fatal(err)
		}
	}

	group, seqs, err := sd.DepositSegments(mwsConn, []segment.Part{
		{Attribute: "CONSUMPTION-SITE1", Body: []byte(`{"kwh":42.7}`)},
		{Attribute: "ERRORS-SITE1", Body: []byte(`{"code":"E07"}`)},
		{Attribute: "EVENTS-SITE1", Body: []byte(`{"event":"cover-opened"}`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 {
		t.Fatalf("%d segment deposits", len(seqs))
	}

	collect := func(rc *rclient.Client) []*segment.Assembled {
		t.Helper()
		msgs, err := rc.RetrieveAndDecrypt(mwsConn, pkgConn, 0, 0)
		if err != nil {
			t.Fatalf("%s: %v", rc.ID(), err)
		}
		as := segment.NewAssembler()
		for _, m := range msgs {
			env, ok := segment.Unwrap(m.Payload)
			if !ok {
				t.Fatalf("%s: non-segment payload", rc.ID())
			}
			if env.Group != group {
				t.Fatalf("%s: wrong group", rc.ID())
			}
			if err := as.Add(env); err != nil {
				t.Fatal(err)
			}
		}
		return as.Groups()
	}

	// Retailer: consumption only, partial view.
	rGroups := collect(retailer)
	if len(rGroups) != 1 || rGroups[0].Complete() {
		t.Fatalf("retailer view wrong: %+v", rGroups)
	}
	if !bytes.Equal(rGroups[0].Join(), []byte(`{"kwh":42.7}`)) {
		t.Fatal("retailer got the wrong segment")
	}

	// Operator: errors only.
	oGroups := collect(operator)
	if len(oGroups) != 1 || !bytes.Equal(oGroups[0].Join(), []byte(`{"code":"E07"}`)) {
		t.Fatal("operator got the wrong segment")
	}

	// Full-service: complete reassembly in index order.
	fGroups := collect(fullService)
	if len(fGroups) != 1 || !fGroups[0].Complete() {
		t.Fatal("full-service view incomplete")
	}
	want := []byte(`{"kwh":42.7}{"code":"E07"}{"event":"cover-opened"}`)
	if !bytes.Equal(fGroups[0].Join(), want) {
		t.Fatalf("reassembly = %s", fGroups[0].Join())
	}
}
