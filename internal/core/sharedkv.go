package core

import (
	"mwskit/internal/storage"
)

// openSharedKV wraps storage.OpenKV; split out so core.go reads as pure
// orchestration.
func openSharedKV(dir string, sync storage.SyncPolicy) (storage.CloserKV, error) {
	return storage.OpenKV(dir, sync)
}
