package core

import (
	"mwskit/internal/store"
	"mwskit/internal/wal"
)

// openSharedKV wraps store.OpenKV; split out so core.go reads as pure
// orchestration.
func openSharedKV(dir string, sync wal.SyncPolicy) (*store.KV, error) {
	return store.OpenKV(dir, sync)
}
