package core

import (
	"testing"

	"mwskit/internal/wire"
)

// TestStatsCoverEveryRoute is the pipeline's instrumentation-coverage
// check: after one request per registered route in both services, the
// TStats introspection op must report a nonzero count for every route.
// A route added to a service without flowing through the instrumented
// router fails this test.
func TestStatsCoverEveryRoute(t *testing.T) {
	dep := newTestDeployment(t)
	mwsConn, pkgConn := dialBoth(t, dep)

	services := []struct {
		name   string
		conn   *wire.Client
		types  []wire.Type
		prefix string
	}{
		{"mws", mwsConn, dep.MWS.Router().Types(), "mws."},
		{"pkg", pkgConn, dep.PKG.Router().Types(), "pkg."},
	}
	for _, svc := range services {
		if len(svc.types) < 3 {
			t.Fatalf("%s registers only %d routes", svc.name, len(svc.types))
		}
		// One request per route. Payloads are junk; an error response
		// still counts — instrumentation wraps every outcome.
		for _, typ := range svc.types {
			svc.conn.Do(wire.Frame{Type: typ})
		}
		resp, err := svc.conn.Do(wire.Frame{Type: wire.TStats})
		if err != nil {
			t.Fatalf("%s stats: %v", svc.name, err)
		}
		if resp.Type != wire.TStatsResp {
			t.Fatalf("%s stats resp type %s", svc.name, resp.Type)
		}
		stats, err := wire.UnmarshalStatsResponse(resp.Payload)
		if err != nil {
			t.Fatal(err)
		}
		byOp := make(map[string]wire.OpStat, len(stats.Ops))
		for _, op := range stats.Ops {
			byOp[op.Op] = op
		}
		for _, typ := range svc.types {
			op, ok := byOp[typ.String()]
			if !ok {
				t.Errorf("%s route %s registered but unreported by TStats", svc.name, typ)
				continue
			}
			if op.Requests == 0 {
				t.Errorf("%s route %s reported zero requests", svc.name, typ)
			}
		}

		// The same counts must surface in-process through the deployment.
		snap := dep.MetricsSnapshot()
		for _, typ := range svc.types {
			key := svc.prefix + typ.String()
			if snap[key].Requests == 0 {
				t.Errorf("MetricsSnapshot missing %s", key)
			}
		}
	}
}
