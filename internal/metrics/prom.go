package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// promEscape escapes a label value per the Prometheus text exposition
// format (backslash, double quote, newline).
func promEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// promLabels renders a label set as {k="v",...}, or "" when empty.
func promLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, 0, len(labels))
	for _, l := range labels {
		// promEscape already produces the exposition-format escaping;
		// %q would double-escape the backslashes it inserts.
		parts = append(parts, l.Key+`="`+promEscape(l.Value)+`"`)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders the registry — per-op request/error/latency
// series, per-code error counters, and every labeled counter and gauge —
// in the Prometheus text exposition format. extraCounters and extraGauges
// let callers append process-wide samples (e.g. crypto-stage counters)
// that live outside the registry. prefix namespaces every metric
// ("mws" → mws_requests_total).
func WritePrometheus(w io.Writer, prefix string, reg *Registry, extraCounters []CounterSample, extraGauges []GaugeSample) {
	if prefix != "" && !strings.HasSuffix(prefix, "_") {
		prefix += "_"
	}
	snap := reg.Snapshot()
	ops := make([]string, 0, len(snap))
	for op := range snap {
		ops = append(ops, op)
	}
	sort.Strings(ops)

	fmt.Fprintf(w, "# TYPE %srequests_total counter\n", prefix)
	for _, op := range ops {
		fmt.Fprintf(w, "%srequests_total{op=%q} %d\n", prefix, promEscape(op), snap[op].Requests)
	}
	fmt.Fprintf(w, "# TYPE %serrors_total counter\n", prefix)
	for _, op := range ops {
		fmt.Fprintf(w, "%serrors_total{op=%q} %d\n", prefix, promEscape(op), snap[op].Errors)
	}
	fmt.Fprintf(w, "# TYPE %serrors_by_code_total counter\n", prefix)
	for _, op := range ops {
		codes := make([]uint32, 0, len(snap[op].ErrorCodes))
		for c := range snap[op].ErrorCodes {
			codes = append(codes, c)
		}
		sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
		for _, c := range codes {
			fmt.Fprintf(w, "%serrors_by_code_total{op=%q,code=\"%d\"} %d\n",
				prefix, promEscape(op), c, snap[op].ErrorCodes[c])
		}
	}
	fmt.Fprintf(w, "# TYPE %srequest_latency_seconds summary\n", prefix)
	for _, op := range ops {
		lat := snap[op].Latency
		if lat.Count == 0 {
			continue
		}
		for _, q := range []struct {
			q string
			v float64
		}{
			{"0.5", lat.P50.Seconds()},
			{"0.9", lat.P90.Seconds()},
			{"0.99", lat.P99.Seconds()},
		} {
			fmt.Fprintf(w, "%srequest_latency_seconds{op=%q,quantile=%q} %g\n",
				prefix, promEscape(op), q.q, q.v)
		}
		fmt.Fprintf(w, "%srequest_latency_seconds_sum{op=%q} %g\n", prefix, promEscape(op), lat.Total.Seconds())
		fmt.Fprintf(w, "%srequest_latency_seconds_count{op=%q} %d\n", prefix, promEscape(op), lat.Count)
	}

	counters := append(reg.Counters(), extraCounters...)
	lastName := ""
	for _, c := range counters {
		if c.Name != lastName {
			fmt.Fprintf(w, "# TYPE %s%s_total counter\n", prefix, c.Name)
			lastName = c.Name
		}
		fmt.Fprintf(w, "%s%s_total%s %d\n", prefix, c.Name, promLabels(c.Labels), c.Value)
	}
	gauges := append(reg.Gauges(), extraGauges...)
	lastName = ""
	for _, g := range gauges {
		if g.Name != lastName {
			fmt.Fprintf(w, "# TYPE %s%s gauge\n", prefix, g.Name)
			lastName = g.Name
		}
		fmt.Fprintf(w, "%s%s%s %d\n", prefix, g.Name, promLabels(g.Labels), g.Value)
	}
}
