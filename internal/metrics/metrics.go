// Package metrics provides the lightweight instrumentation the server
// pipeline and benchmark harness use to report latency distributions and
// throughput — the numbers the paper's evaluation never published but its
// §III(iv) scalability requirement demands.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultReservoirSize bounds the samples a Histogram retains. 2048
// samples keep percentile error under ~1% while holding memory constant
// no matter how long the server runs.
const DefaultReservoirSize = 2048

// Histogram records durations and reports percentile statistics. It keeps
// a fixed-size uniform reservoir (Vitter's Algorithm R), so memory stays
// bounded on a long-running server while Min, Max, Mean, Total, and Count
// remain exact; percentiles are estimated from the reservoir. Safe for
// concurrent use.
type Histogram struct {
	mu       sync.Mutex
	capacity int
	samples  []time.Duration // reservoir, len <= capacity
	count    uint64          // total observations, exact
	total    time.Duration
	min, max time.Duration
	rng      uint64 // xorshift64 state for reservoir replacement
}

// NewHistogram returns an empty histogram with the default reservoir size.
func NewHistogram() *Histogram { return NewHistogramSize(DefaultReservoirSize) }

// NewHistogramSize returns an empty histogram retaining at most n samples.
func NewHistogramSize(n int) *Histogram {
	if n <= 0 {
		n = DefaultReservoirSize
	}
	return &Histogram{capacity: n, rng: 0x9E3779B97F4A7C15}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if h.count == 0 || d > h.max {
		h.max = d
	}
	h.count++
	h.total += d
	if len(h.samples) < h.capacity {
		h.samples = append(h.samples, d)
	} else {
		// Replace a random slot with probability capacity/count, which
		// keeps every observation equally likely to be in the reservoir.
		h.rng ^= h.rng << 13
		h.rng ^= h.rng >> 7
		h.rng ^= h.rng << 17
		if idx := h.rng % h.count; idx < uint64(h.capacity) {
			h.samples[idx] = d
		}
	}
	h.mu.Unlock()
}

// Time runs fn and records its wall-clock duration.
func (h *Histogram) Time(fn func()) {
	start := time.Now()
	fn()
	h.Observe(time.Since(start))
}

// Count returns the number of observations (not the retained sample count).
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.count)
}

// Snapshot summarizes the recorded samples. Count, Min, Max, Mean, and
// Total are exact; the percentiles are reservoir estimates once the
// observation count exceeds the reservoir size.
type Snapshot struct {
	Count          int
	Min, Max, Mean time.Duration
	P50, P90, P99  time.Duration
	Total          time.Duration
}

// Snapshot computes the distribution summary.
func (h *Histogram) Snapshot() Snapshot {
	h.mu.Lock()
	samples := make([]time.Duration, len(h.samples))
	copy(samples, h.samples)
	count, total, min, max := h.count, h.total, h.min, h.max
	h.mu.Unlock()
	if count == 0 {
		return Snapshot{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	pct := func(p float64) time.Duration {
		idx := int(math.Ceil(p*float64(len(samples)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(samples) {
			idx = len(samples) - 1
		}
		return samples[idx]
	}
	return Snapshot{
		Count: int(count),
		Min:   min,
		Max:   max,
		Mean:  total / time.Duration(count),
		P50:   pct(0.50),
		P90:   pct(0.90),
		P99:   pct(0.99),
		Total: total,
	}
}

// String renders the snapshot as one report row.
func (s Snapshot) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%v p50=%v p90=%v p99=%v max=%v mean=%v",
		s.Count, s.Min, s.P50, s.P90, s.P99, s.Max, s.Mean)
}

// Throughput converts a count over a duration to operations/second.
func Throughput(count int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(count) / elapsed.Seconds()
}

// Counter is a monotonically increasing counter, safe for concurrent use.
type Counter struct {
	n atomic.Uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// opStats is one operation's instrumentation: request/error totals, a
// latency reservoir, and a per-error-code breakdown.
type opStats struct {
	requests Counter
	errors   Counter
	latency  *Histogram

	codeMu sync.Mutex
	codes  map[uint32]uint64
}

// Registry tracks per-operation request counts, error counts, and latency
// distributions, plus free-form labeled counter and gauge series. The
// zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	ops      map[string]*opStats
	counters map[seriesKey]*counterSeries
	gauges   map[seriesKey]*gaugeSeries
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ops:      make(map[string]*opStats),
		counters: make(map[seriesKey]*counterSeries),
		gauges:   make(map[seriesKey]*gaugeSeries),
	}
}

func (r *Registry) get(op string) *opStats {
	r.mu.RLock()
	s, ok := r.ops[op]
	r.mu.RUnlock()
	if ok {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok = r.ops[op]; ok {
		return s
	}
	s = &opStats{latency: NewHistogram()}
	r.ops[op] = s
	return s
}

// Observe records one completed operation.
func (r *Registry) Observe(op string, d time.Duration, isErr bool) {
	s := r.get(op)
	s.requests.Inc()
	if isErr {
		s.errors.Inc()
	}
	s.latency.Observe(d)
}

// ObserveCode attributes one error on op to a structured error code, so
// operators can tell authentication failures from timeouts without
// grepping logs. Call it alongside Observe(op, d, true).
func (r *Registry) ObserveCode(op string, code uint32) {
	s := r.get(op)
	s.codeMu.Lock()
	if s.codes == nil {
		s.codes = make(map[uint32]uint64)
	}
	s.codes[code]++
	s.codeMu.Unlock()
}

// OpSnapshot is one operation's totals, latency summary, and error-code
// breakdown.
type OpSnapshot struct {
	Requests   uint64
	Errors     uint64
	Latency    Snapshot
	ErrorCodes map[uint32]uint64 // nil when no coded errors were observed
}

// String renders the op snapshot as one report row.
func (s OpSnapshot) String() string {
	base := fmt.Sprintf("requests=%d errors=%d %s", s.Requests, s.Errors, s.Latency)
	if len(s.ErrorCodes) == 0 {
		return base
	}
	codes := make([]uint32, 0, len(s.ErrorCodes))
	for c := range s.ErrorCodes {
		codes = append(codes, c)
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	parts := make([]string, 0, len(codes))
	for _, c := range codes {
		parts = append(parts, fmt.Sprintf("%d:%d", c, s.ErrorCodes[c]))
	}
	return base + " codes[" + strings.Join(parts, " ") + "]"
}

// Snapshot returns a point-in-time view of every operation observed so far.
func (r *Registry) Snapshot() map[string]OpSnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]OpSnapshot, len(r.ops))
	for op, s := range r.ops {
		var codes map[uint32]uint64
		s.codeMu.Lock()
		if len(s.codes) > 0 {
			codes = make(map[uint32]uint64, len(s.codes))
			for c, n := range s.codes {
				codes[c] = n
			}
		}
		s.codeMu.Unlock()
		out[op] = OpSnapshot{
			Requests:   s.requests.Value(),
			Errors:     s.errors.Value(),
			Latency:    s.latency.Snapshot(),
			ErrorCodes: codes,
		}
	}
	return out
}

// FormatSnapshot renders a registry snapshot as one stable, sorted log
// line ("op: requests=... errors=... n=... p50=... | ..."), the format the
// daemons' periodic stats lines use.
func FormatSnapshot(snap map[string]OpSnapshot) string {
	if len(snap) == 0 {
		return "no requests served"
	}
	ops := make([]string, 0, len(snap))
	for op := range snap {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	parts := make([]string, 0, len(ops))
	for _, op := range ops {
		parts = append(parts, fmt.Sprintf("%s: %s", op, snap[op]))
	}
	return strings.Join(parts, " | ")
}
