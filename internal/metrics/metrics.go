// Package metrics provides the lightweight instrumentation the benchmark
// harness uses to report latency distributions and throughput — the
// numbers the paper's evaluation never published but its §III(iv)
// scalability requirement demands.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram records durations and reports percentile statistics. Safe for
// concurrent use.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, d)
	h.mu.Unlock()
}

// Time runs fn and records its wall-clock duration.
func (h *Histogram) Time(fn func()) {
	start := time.Now()
	fn()
	h.Observe(time.Since(start))
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Snapshot summarizes the recorded samples.
type Snapshot struct {
	Count          int
	Min, Max, Mean time.Duration
	P50, P90, P99  time.Duration
	Total          time.Duration
}

// Snapshot computes the distribution summary.
func (h *Histogram) Snapshot() Snapshot {
	h.mu.Lock()
	samples := make([]time.Duration, len(h.samples))
	copy(samples, h.samples)
	h.mu.Unlock()
	if len(samples) == 0 {
		return Snapshot{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var total time.Duration
	for _, s := range samples {
		total += s
	}
	pct := func(p float64) time.Duration {
		idx := int(math.Ceil(p*float64(len(samples)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(samples) {
			idx = len(samples) - 1
		}
		return samples[idx]
	}
	return Snapshot{
		Count: len(samples),
		Min:   samples[0],
		Max:   samples[len(samples)-1],
		Mean:  total / time.Duration(len(samples)),
		P50:   pct(0.50),
		P90:   pct(0.90),
		P99:   pct(0.99),
		Total: total,
	}
}

// String renders the snapshot as one report row.
func (s Snapshot) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%v p50=%v p90=%v p99=%v max=%v mean=%v",
		s.Count, s.Min, s.P50, s.P90, s.P99, s.Max, s.Mean)
}

// Throughput converts a count over a duration to operations/second.
func Throughput(count int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(count) / elapsed.Seconds()
}

// Counter is a concurrent monotonically increasing counter.
type Counter struct {
	mu sync.Mutex
	n  uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) {
	c.mu.Lock()
	c.n += delta
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
