// Package metrics provides the lightweight instrumentation the server
// pipeline and benchmark harness use to report latency distributions and
// throughput — the numbers the paper's evaluation never published but its
// §III(iv) scalability requirement demands.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultReservoirSize bounds the samples a Histogram retains. 2048
// samples keep percentile error under ~1% while holding memory constant
// no matter how long the server runs.
const DefaultReservoirSize = 2048

// Histogram records durations and reports percentile statistics. It keeps
// a fixed-size uniform reservoir (Vitter's Algorithm R), so memory stays
// bounded on a long-running server while Min, Max, Mean, Total, and Count
// remain exact; percentiles are estimated from the reservoir. Safe for
// concurrent use.
type Histogram struct {
	mu       sync.Mutex
	capacity int
	samples  []time.Duration // reservoir, len <= capacity
	count    uint64          // total observations, exact
	total    time.Duration
	min, max time.Duration
	rng      uint64 // xorshift64 state for reservoir replacement
}

// NewHistogram returns an empty histogram with the default reservoir size.
func NewHistogram() *Histogram { return NewHistogramSize(DefaultReservoirSize) }

// NewHistogramSize returns an empty histogram retaining at most n samples.
func NewHistogramSize(n int) *Histogram {
	if n <= 0 {
		n = DefaultReservoirSize
	}
	return &Histogram{capacity: n, rng: 0x9E3779B97F4A7C15}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if h.count == 0 || d > h.max {
		h.max = d
	}
	h.count++
	h.total += d
	if len(h.samples) < h.capacity {
		h.samples = append(h.samples, d)
	} else {
		// Replace a random slot with probability capacity/count, which
		// keeps every observation equally likely to be in the reservoir.
		h.rng ^= h.rng << 13
		h.rng ^= h.rng >> 7
		h.rng ^= h.rng << 17
		if idx := h.rng % h.count; idx < uint64(h.capacity) {
			h.samples[idx] = d
		}
	}
	h.mu.Unlock()
}

// Time runs fn and records its wall-clock duration.
func (h *Histogram) Time(fn func()) {
	start := time.Now()
	fn()
	h.Observe(time.Since(start))
}

// Count returns the number of observations (not the retained sample count).
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.count)
}

// Snapshot summarizes the recorded samples. Count, Min, Max, Mean, and
// Total are exact; the percentiles are reservoir estimates once the
// observation count exceeds the reservoir size.
type Snapshot struct {
	Count          int
	Min, Max, Mean time.Duration
	P50, P90, P99  time.Duration
	Total          time.Duration
}

// Snapshot computes the distribution summary.
func (h *Histogram) Snapshot() Snapshot {
	h.mu.Lock()
	samples := make([]time.Duration, len(h.samples))
	copy(samples, h.samples)
	count, total, min, max := h.count, h.total, h.min, h.max
	h.mu.Unlock()
	if count == 0 {
		return Snapshot{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	pct := func(p float64) time.Duration {
		idx := int(math.Ceil(p*float64(len(samples)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(samples) {
			idx = len(samples) - 1
		}
		return samples[idx]
	}
	return Snapshot{
		Count: int(count),
		Min:   min,
		Max:   max,
		Mean:  total / time.Duration(count),
		P50:   pct(0.50),
		P90:   pct(0.90),
		P99:   pct(0.99),
		Total: total,
	}
}

// String renders the snapshot as one report row.
func (s Snapshot) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%v p50=%v p90=%v p99=%v max=%v mean=%v",
		s.Count, s.Min, s.P50, s.P90, s.P99, s.Max, s.Mean)
}

// Throughput converts a count over a duration to operations/second.
func Throughput(count int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(count) / elapsed.Seconds()
}

// Counter is a monotonically increasing counter, safe for concurrent use.
type Counter struct {
	n atomic.Uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// opStats is one operation's instrumentation: request/error totals plus a
// latency reservoir.
type opStats struct {
	requests Counter
	errors   Counter
	latency  *Histogram
}

// Registry tracks per-operation request counts, error counts, and latency
// distributions. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu  sync.RWMutex
	ops map[string]*opStats
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{ops: make(map[string]*opStats)} }

func (r *Registry) get(op string) *opStats {
	r.mu.RLock()
	s, ok := r.ops[op]
	r.mu.RUnlock()
	if ok {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok = r.ops[op]; ok {
		return s
	}
	s = &opStats{latency: NewHistogram()}
	r.ops[op] = s
	return s
}

// Observe records one completed operation.
func (r *Registry) Observe(op string, d time.Duration, isErr bool) {
	s := r.get(op)
	s.requests.Inc()
	if isErr {
		s.errors.Inc()
	}
	s.latency.Observe(d)
}

// OpSnapshot is one operation's totals and latency summary.
type OpSnapshot struct {
	Requests uint64
	Errors   uint64
	Latency  Snapshot
}

// String renders the op snapshot as one report row.
func (s OpSnapshot) String() string {
	return fmt.Sprintf("requests=%d errors=%d %s", s.Requests, s.Errors, s.Latency)
}

// Snapshot returns a point-in-time view of every operation observed so far.
func (r *Registry) Snapshot() map[string]OpSnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]OpSnapshot, len(r.ops))
	for op, s := range r.ops {
		out[op] = OpSnapshot{
			Requests: s.requests.Value(),
			Errors:   s.errors.Value(),
			Latency:  s.latency.Snapshot(),
		}
	}
	return out
}

// FormatSnapshot renders a registry snapshot as one stable, sorted log
// line ("op: requests=... errors=... n=... p50=... | ..."), the format the
// daemons' periodic stats lines use.
func FormatSnapshot(snap map[string]OpSnapshot) string {
	if len(snap) == 0 {
		return "no requests served"
	}
	ops := make([]string, 0, len(snap))
	for op := range snap {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	parts := make([]string, 0, len(ops))
	for _, op := range ops {
		parts = append(parts, fmt.Sprintf("%s: %s", op, snap[op]))
	}
	return strings.Join(parts, " | ")
}
