package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	s := h.Snapshot()
	if s.Count != 0 || s.String() != "n=0" {
		t.Fatalf("empty snapshot: %+v", s)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.P50 != 50*time.Millisecond {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.P90 != 90*time.Millisecond {
		t.Fatalf("p90 = %v", s.P90)
	}
	if s.P99 != 99*time.Millisecond {
		t.Fatalf("p99 = %v", s.P99)
	}
	wantMean := 50500 * time.Microsecond
	if s.Mean != wantMean {
		t.Fatalf("mean = %v, want %v", s.Mean, wantMean)
	}
	if !strings.Contains(s.String(), "n=100") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram()
	h.Observe(7 * time.Millisecond)
	s := h.Snapshot()
	if s.P50 != 7*time.Millisecond || s.P99 != 7*time.Millisecond || s.Mean != 7*time.Millisecond {
		t.Fatalf("single-sample snapshot wrong: %+v", s)
	}
}

func TestHistogramTime(t *testing.T) {
	h := NewHistogram()
	h.Time(func() { time.Sleep(time.Millisecond) })
	if h.Count() != 1 {
		t.Fatal("Time did not record")
	}
	if h.Snapshot().Min < time.Millisecond {
		t.Fatal("recorded duration implausibly small")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				h.Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 800 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(100, time.Second); got != 100 {
		t.Fatalf("Throughput = %v", got)
	}
	if got := Throughput(50, 500*time.Millisecond); got != 100 {
		t.Fatalf("Throughput = %v", got)
	}
	if got := Throughput(10, 0); got != 0 {
		t.Fatalf("zero-duration Throughput = %v", got)
	}
}

// TestHistogramBoundedMemory drives far more observations than the
// reservoir holds and checks memory stays bounded while the exact
// aggregates remain exact and percentile estimates stay sane.
func TestHistogramBoundedMemory(t *testing.T) {
	h := NewHistogramSize(64)
	const n = 100_000
	for i := 1; i <= n; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if got := len(h.samples); got > 64 {
		t.Fatalf("reservoir holds %d samples, cap 64", got)
	}
	s := h.Snapshot()
	if s.Count != n {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	if s.Min != time.Microsecond || s.Max != n*time.Microsecond {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	wantMean := time.Duration(n+1) * time.Microsecond / 2
	if s.Mean != wantMean {
		t.Fatalf("mean = %v, want %v", s.Mean, wantMean)
	}
	// The reservoir is a uniform sample: p50 of a uniform ramp should land
	// well inside the middle half. A generous band avoids flakiness while
	// still catching a broken (e.g. recency-biased) reservoir.
	if s.P50 < n/10*time.Microsecond || s.P50 > 9*n/10*time.Microsecond {
		t.Fatalf("p50 = %v implausible for uniform ramp", s.P50)
	}
}

func TestHistogramExactBelowCapacity(t *testing.T) {
	h := NewHistogramSize(128)
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.P50 != 50*time.Millisecond || s.P99 != 99*time.Millisecond {
		t.Fatalf("percentiles not exact below capacity: %+v", s)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Observe("Deposit", 2*time.Millisecond, false)
	r.Observe("Deposit", 4*time.Millisecond, true)
	r.Observe("Retrieve", time.Millisecond, false)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("ops = %d, want 2", len(snap))
	}
	dep := snap["Deposit"]
	if dep.Requests != 2 || dep.Errors != 1 || dep.Latency.Count != 2 {
		t.Fatalf("deposit snapshot: %+v", dep)
	}
	if dep.Latency.Max != 4*time.Millisecond {
		t.Fatalf("deposit max = %v", dep.Latency.Max)
	}
	if snap["Retrieve"].Errors != 0 {
		t.Fatal("retrieve errors nonzero")
	}
	if dep.String() == "" {
		t.Fatal("empty OpSnapshot.String")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			op := []string{"a", "b"}[g%2]
			for i := 0; i < 500; i++ {
				r.Observe(op, time.Microsecond, i%10 == 0)
			}
		}(g)
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap["a"].Requests != 2000 || snap["b"].Requests != 2000 {
		t.Fatalf("requests = %d/%d", snap["a"].Requests, snap["b"].Requests)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d", c.Value())
	}
}
