package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	s := h.Snapshot()
	if s.Count != 0 || s.String() != "n=0" {
		t.Fatalf("empty snapshot: %+v", s)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.P50 != 50*time.Millisecond {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.P90 != 90*time.Millisecond {
		t.Fatalf("p90 = %v", s.P90)
	}
	if s.P99 != 99*time.Millisecond {
		t.Fatalf("p99 = %v", s.P99)
	}
	wantMean := 50500 * time.Microsecond
	if s.Mean != wantMean {
		t.Fatalf("mean = %v, want %v", s.Mean, wantMean)
	}
	if !strings.Contains(s.String(), "n=100") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram()
	h.Observe(7 * time.Millisecond)
	s := h.Snapshot()
	if s.P50 != 7*time.Millisecond || s.P99 != 7*time.Millisecond || s.Mean != 7*time.Millisecond {
		t.Fatalf("single-sample snapshot wrong: %+v", s)
	}
}

func TestHistogramTime(t *testing.T) {
	h := NewHistogram()
	h.Time(func() { time.Sleep(time.Millisecond) })
	if h.Count() != 1 {
		t.Fatal("Time did not record")
	}
	if h.Snapshot().Min < time.Millisecond {
		t.Fatal("recorded duration implausibly small")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				h.Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 800 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(100, time.Second); got != 100 {
		t.Fatalf("Throughput = %v", got)
	}
	if got := Throughput(50, 500*time.Millisecond); got != 100 {
		t.Fatalf("Throughput = %v", got)
	}
	if got := Throughput(10, 0); got != 0 {
		t.Fatalf("zero-duration Throughput = %v", got)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d", c.Value())
	}
}
