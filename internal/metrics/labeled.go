package metrics

import (
	"sort"
	"strings"
	"sync/atomic"
)

// Label is one key=value dimension attached to a counter or gauge.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label at a call site.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// labelsKey renders a label set into a canonical map key. Labels are
// sorted by key so the same set registered in any order collapses into
// one series.
func labelsKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// sortedLabels returns a sorted copy of the label set.
func sortedLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// Gauge is an instantaneous signed value, safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 { return g.v.Load() }

// CounterSample is a point-in-time reading of one labeled counter series.
type CounterSample struct {
	Name   string
	Labels []Label
	Value  uint64
}

// GaugeSample is a point-in-time reading of one labeled gauge series.
type GaugeSample struct {
	Name   string
	Labels []Label
	Value  int64
}

// seriesKey identifies one labeled series inside a registry family.
type seriesKey struct {
	name   string
	labels string
}

// counterSeries pairs the live counter with its decoded label set so
// snapshots need not re-parse the map key.
type counterSeries struct {
	labels []Label
	c      Counter
}

type gaugeSeries struct {
	labels []Label
	g      Gauge
}

// Counter returns (registering on first use) the counter series for the
// given name and label set. The returned pointer is stable, so hot paths
// should resolve it once and call Inc/Add on the result.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	k := seriesKey{name: name, labels: labelsKey(labels)}
	r.mu.RLock()
	s, ok := r.counters[k]
	r.mu.RUnlock()
	if ok {
		return &s.c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok = r.counters[k]; ok {
		return &s.c
	}
	s = &counterSeries{labels: sortedLabels(labels)}
	r.counters[k] = s
	return &s.c
}

// Gauge returns (registering on first use) the gauge series for the given
// name and label set.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	k := seriesKey{name: name, labels: labelsKey(labels)}
	r.mu.RLock()
	s, ok := r.gauges[k]
	r.mu.RUnlock()
	if ok {
		return &s.g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok = r.gauges[k]; ok {
		return &s.g
	}
	s = &gaugeSeries{labels: sortedLabels(labels)}
	r.gauges[k] = s
	return &s.g
}

// Counters returns a stable-sorted snapshot of every labeled counter
// series registered so far.
func (r *Registry) Counters() []CounterSample {
	r.mu.RLock()
	out := make([]CounterSample, 0, len(r.counters))
	for k, s := range r.counters {
		out = append(out, CounterSample{Name: k.name, Labels: s.labels, Value: s.c.Value()})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelsKey(out[i].Labels) < labelsKey(out[j].Labels)
	})
	return out
}

// Gauges returns a stable-sorted snapshot of every labeled gauge series
// registered so far.
func (r *Registry) Gauges() []GaugeSample {
	r.mu.RLock()
	out := make([]GaugeSample, 0, len(r.gauges))
	for k, s := range r.gauges {
		out = append(out, GaugeSample{Name: k.name, Labels: s.labels, Value: s.g.Value()})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelsKey(out[i].Labels) < labelsKey(out[j].Labels)
	})
	return out
}
