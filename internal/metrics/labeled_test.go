package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLabeledCounterIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("errors_by_code", L("op", "Deposit"), L("code", "2"))
	// Same set, different order → same series.
	b := r.Counter("errors_by_code", L("code", "2"), L("op", "Deposit"))
	if a != b {
		t.Fatal("label order split one series into two")
	}
	c := r.Counter("errors_by_code", L("op", "Deposit"), L("code", "3"))
	if a == c {
		t.Fatal("distinct label values share a series")
	}
	a.Add(2)
	c.Inc()
	samples := r.Counters()
	if len(samples) != 2 {
		t.Fatalf("got %d series, want 2: %+v", len(samples), samples)
	}
	// Snapshot is sorted by name then canonical labels; labels are sorted
	// by key.
	if samples[0].Labels[0].Key != "code" || samples[0].Value != 2 {
		t.Fatalf("first sample = %+v", samples[0])
	}
}

func TestLabeledGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("queue_depth", L("listener", "sd"))
	g.Set(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Fatalf("gauge = %d", g.Value())
	}
	if same := r.Gauge("queue_depth", L("listener", "sd")); same != g {
		t.Fatal("re-registration returned a different gauge")
	}
	gs := r.Gauges()
	if len(gs) != 1 || gs[0].Value != 3 || gs[0].Name != "queue_depth" {
		t.Fatalf("gauges = %+v", gs)
	}
}

// TestLabeledConcurrent is the -race hammer: concurrent first-use
// registration and increments across a fixed set of series must produce
// exact totals.
func TestLabeledConcurrent(t *testing.T) {
	r := NewRegistry()
	codes := []string{"1", "2", "3", "4"}
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				code := codes[(g+i)%len(codes)]
				r.Counter("errs", L("code", code)).Inc()
				r.Gauge("depth", L("code", code)).Add(1)
			}
		}(g)
	}
	wg.Wait()
	var totalC, totalG int64
	for _, s := range r.Counters() {
		totalC += int64(s.Value)
	}
	for _, s := range r.Gauges() {
		totalG += s.Value
	}
	if totalC != goroutines*perG || totalG != goroutines*perG {
		t.Fatalf("totals = %d counter / %d gauge, want %d", totalC, totalG, goroutines*perG)
	}
	if n := len(r.Counters()); n != len(codes) {
		t.Fatalf("got %d counter series, want %d", n, len(codes))
	}
}

func TestObserveCode(t *testing.T) {
	r := NewRegistry()
	r.Observe("Deposit", time.Millisecond, true)
	r.ObserveCode("Deposit", 2)
	r.ObserveCode("Deposit", 2)
	r.ObserveCode("Deposit", 7)
	snap := r.Snapshot()["Deposit"]
	if snap.ErrorCodes[2] != 2 || snap.ErrorCodes[7] != 1 {
		t.Fatalf("error codes = %+v", snap.ErrorCodes)
	}
	if s := snap.String(); !strings.Contains(s, "codes[2:2 7:1]") {
		t.Fatalf("String() drops code detail: %q", s)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Observe("Deposit", 2*time.Millisecond, false)
	r.Observe("Deposit", 4*time.Millisecond, true)
	r.ObserveCode("Deposit", 2)
	r.Counter("pairing_ops").Add(42)
	r.Counter("errs", L("code", `q"uote`)).Inc()
	r.Gauge("wal_fsync_p99_ns").Set(1234)

	var b strings.Builder
	WritePrometheus(&b, "mws", r,
		[]CounterSample{{Name: "zz_extra", Value: 7}},
		[]GaugeSample{{Name: "zz_gauge", Value: -1}})
	out := b.String()
	for _, want := range []string{
		"# TYPE mws_requests_total counter\n",
		`mws_requests_total{op="Deposit"} 2`,
		`mws_errors_total{op="Deposit"} 1`,
		`mws_errors_by_code_total{op="Deposit",code="2"} 1`,
		`mws_request_latency_seconds{op="Deposit",quantile="0.5"}`,
		`mws_request_latency_seconds_count{op="Deposit"} 2`,
		"mws_pairing_ops_total 42",
		`mws_errs_total{code="q\"uote"} 1`,
		"# TYPE mws_wal_fsync_p99_ns gauge",
		"mws_wal_fsync_p99_ns 1234",
		"mws_zz_extra_total 7",
		"mws_zz_gauge -1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}
