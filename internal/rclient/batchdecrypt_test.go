package rclient

import (
	"bytes"
	"context"
	"crypto/rand"
	"fmt"
	"testing"

	"mwskit/internal/attr"
	"mwskit/internal/bfibe"
	"mwskit/internal/symenc"
	"mwskit/internal/wire"
)

// buildRetrieval assembles an offline Retrieval of n messages with
// distinct identities plus the key map FetchKeys would have produced.
func buildRetrieval(t *testing.T, n int) (*Client, *Retrieval, map[keyIndex]*bfibe.PrivateKey, [][]byte) {
	t.Helper()
	params, master, rsaKey := env(t)
	c, err := New("rc", []byte("pw"), rsaKey, params)
	if err != nil {
		t.Fatal(err)
	}
	scheme := symenc.Default()
	r := &Retrieval{}
	keys := make(map[keyIndex]*bfibe.PrivateKey)
	payloads := make([][]byte, n)
	for i := 0; i < n; i++ {
		payloads[i] = []byte(fmt.Sprintf("reading-%d", i))
		a := attr.Attribute("ELECTRIC-X")
		nonce, err := attr.NewNonce(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		identity := attr.Identity(a, nonce)
		enc, key, err := params.Encapsulate(identity, scheme.KeyLen(), rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		u := bfibe.MarshalEncapsulation(params, enc)
		aad := wire.MessageAAD("meter", 1278000000, nonce[:], u)
		ct, err := scheme.Seal(key, payloads[i], aad)
		if err != nil {
			t.Fatal(err)
		}
		sk, err := master.Extract(params, identity)
		if err != nil {
			t.Fatal(err)
		}
		aid := uint64(i % 3) // a few AIDs, distinct nonces
		r.Items = append(r.Items, Envelope{
			Seq:        uint64(i),
			AID:        aid,
			Nonce:      nonce[:],
			U:          u,
			Ciphertext: ct,
			Scheme:     scheme.Name(),
			DeviceID:   "meter",
			Timestamp:  1278000000,
		})
		keys[keyIndexOf(aid, nonce[:])] = sk
	}
	return c, r, keys, payloads
}

func TestDecryptRetrievalParallelOrder(t *testing.T) {
	c, r, keys, payloads := buildRetrieval(t, 16)
	msgs, err := c.DecryptRetrieval(context.Background(), r, keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != len(payloads) {
		t.Fatalf("got %d messages, want %d", len(msgs), len(payloads))
	}
	for i, m := range msgs {
		if m == nil {
			t.Fatalf("message %d missing", i)
		}
		if m.Seq != uint64(i) || !bytes.Equal(m.Payload, payloads[i]) {
			t.Fatalf("message %d out of order or corrupted: %+v", i, m)
		}
	}

	empty, err := c.DecryptRetrieval(context.Background(), &Retrieval{}, keys)
	if err != nil || empty != nil {
		t.Fatalf("empty retrieval: %v, %v", empty, err)
	}
}

func TestDecryptRetrievalMissingKey(t *testing.T) {
	c, r, keys, _ := buildRetrieval(t, 4)
	delete(keys, keyIndexOf(r.Items[2].AID, r.Items[2].Nonce))
	if _, err := c.DecryptRetrieval(context.Background(), r, keys); err == nil {
		t.Fatal("missing key did not fail the batch")
	}
}

func TestDecryptRetrievalCanceled(t *testing.T) {
	c, r, keys, _ := buildRetrieval(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.DecryptRetrieval(ctx, r, keys); err == nil {
		t.Fatal("canceled context accepted")
	}
}

func TestDecryptRetrievalBadCiphertextFails(t *testing.T) {
	c, r, keys, _ := buildRetrieval(t, 6)
	r.Items[3].Ciphertext[0] ^= 1
	if _, err := c.DecryptRetrieval(context.Background(), r, keys); err == nil {
		t.Fatal("tampered ciphertext did not fail the batch")
	}
}
