package rclient

import (
	"bytes"
	"crypto/rand"
	"testing"
	"time"

	"mwskit/internal/device"
	"mwskit/internal/keyserver"
	"mwskit/internal/mws"
	"mwskit/internal/wal"
	"mwskit/internal/wire"
)

// netHarness stands up real MWS + PKG servers plus a registered device
// and an enrolled client for RC-side network tests.
type netHarness struct {
	mwsSvc  *mws.Service
	pkgSvc  *keyserver.Service
	mwsConn *wire.Client
	pkgConn *wire.Client
	dev     *device.Device
	rc      *Client
}

func newNetHarness(t *testing.T) *netHarness {
	t.Helper()
	shared := make([]byte, 32)
	if _, err := rand.Read(shared); err != nil {
		t.Fatal(err)
	}
	pkgSvc, err := keyserver.New(keyserver.Config{
		Dir: t.TempDir(), Preset: "test", MWSPKGKey: shared, Sync: wal.SyncNever,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pkgSvc.Close() })
	mwsSvc, err := mws.New(mws.Config{
		Dir: t.TempDir(), MWSPKGKey: shared, Sync: wal.SyncNever, IBEParams: pkgSvc.Params(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mwsSvc.Close() })

	mwsSrv, mwsAddr, err := mwsSvc.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mwsSrv.Close() })
	pkgSrv, pkgAddr, err := pkgSvc.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pkgSrv.Close() })

	mwsConn, err := wire.Dial(mwsAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mwsConn.Close() })
	pkgConn, err := wire.Dial(pkgAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pkgConn.Close() })

	// Device.
	devKey, err := mwsSvc.RegisterDevice("meter")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := device.New("meter", devKey, pkgSvc.Params())
	if err != nil {
		t.Fatal(err)
	}

	// Client.
	_, _, rsaKey := env(t) // shared fixture from rclient_test.go
	if err := mwsSvc.RegisterClient("rc", []byte("pw"), &rsaKey.PublicKey); err != nil {
		t.Fatal(err)
	}
	if _, err := mwsSvc.Grant("rc", "A1"); err != nil {
		t.Fatal(err)
	}
	rc, err := New("rc", []byte("pw"), rsaKey, pkgSvc.Params())
	if err != nil {
		t.Fatal(err)
	}
	return &netHarness{mwsSvc: mwsSvc, pkgSvc: pkgSvc, mwsConn: mwsConn, pkgConn: pkgConn, dev: dev, rc: rc}
}

func TestRetrieveAndDecryptOverNetwork(t *testing.T) {
	h := newNetHarness(t)
	if _, err := h.dev.Deposit(h.mwsConn, "A1", []byte("msg one")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.dev.Deposit(h.mwsConn, "A1", []byte("msg two")); err != nil {
		t.Fatal(err)
	}
	msgs, err := h.rc.RetrieveAndDecrypt(h.mwsConn, h.pkgConn, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 || !bytes.Equal(msgs[0].Payload, []byte("msg one")) || !bytes.Equal(msgs[1].Payload, []byte("msg two")) {
		t.Fatalf("round trip mismatch: %v", msgs)
	}
}

func TestRetrieveEmptyWarehouse(t *testing.T) {
	h := newNetHarness(t)
	msgs, err := h.rc.RetrieveAndDecrypt(h.mwsConn, h.pkgConn, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if msgs != nil {
		t.Fatalf("expected nil for empty warehouse, got %v", msgs)
	}
}

func TestRetrieveWrongPassword(t *testing.T) {
	h := newNetHarness(t)
	_, _, rsaKey := env(t)
	bad, err := New("rc", []byte("wrong"), rsaKey, h.pkgSvc.Params())
	if err != nil {
		t.Fatal(err)
	}
	_, err = bad.Retrieve(h.mwsConn, 0, 0)
	if em, ok := err.(*wire.ErrorMsg); !ok || em.Code != wire.CodeAuth {
		t.Fatalf("err = %v, want auth ErrorMsg", err)
	}
}

func TestFetchKeysDeduplicates(t *testing.T) {
	h := newNetHarness(t)
	for i := 0; i < 3; i++ {
		if _, err := h.dev.Deposit(h.mwsConn, "A1", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ret, err := h.rc.Retrieve(h.mwsConn, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys, items, err := h.rc.FetchKeys(h.pkgConn, ret)
	if err != nil {
		t.Fatal(err)
	}
	// Three distinct nonces → three distinct keys; dedup keeps them all.
	if len(keys) != 3 || len(items) != 3 {
		t.Fatalf("keys=%d items=%d", len(keys), len(items))
	}
	// Empty retrieval short-circuits without a PKG round trip.
	empty := &Retrieval{SessionKey: ret.SessionKey, TicketBlob: ret.TicketBlob}
	keys2, items2, err := h.rc.FetchKeys(h.pkgConn, empty)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys2) != 0 || items2 != nil {
		t.Fatal("empty retrieval produced extract traffic")
	}
}

func TestSearchOverNetwork(t *testing.T) {
	h := newNetHarness(t)
	if _, err := h.dev.DepositTagged(h.mwsConn, "A1", []byte("tagged"), []string{"special"}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.dev.Deposit(h.mwsConn, "A1", []byte("plain")); err != nil {
		t.Fatal(err)
	}
	boot, err := h.rc.Retrieve(h.mwsConn, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	td, err := h.rc.FetchTrapdoor(h.pkgConn, boot, "special")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	hits, err := h.rc.Search(h.mwsConn, td, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits.Items) != 1 {
		t.Fatalf("search hits = %d", len(hits.Items))
	}
	keys, _, err := h.rc.FetchKeys(h.pkgConn, hits)
	if err != nil {
		t.Fatal(err)
	}
	for _, sk := range keys {
		m, err := h.rc.Decrypt(&hits.Items[0], sk)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(m.Payload, []byte("tagged")) {
			t.Fatal("wrong message matched")
		}
	}
}

func TestRetrieveCursorOverNetwork(t *testing.T) {
	h := newNetHarness(t)
	var last uint64
	for i := 0; i < 5; i++ {
		seq, err := h.dev.Deposit(h.mwsConn, "A1", []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		last = seq
	}
	msgs, err := h.rc.RetrieveAndDecrypt(h.mwsConn, h.pkgConn, last, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].Seq != last {
		t.Fatalf("cursor fetch: %v", msgs)
	}
}
