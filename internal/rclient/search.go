package rclient

import (
	"fmt"

	"mwskit/internal/symenc"
	"mwskit/internal/ticket"
	"mwskit/internal/wire"
)

// keywordAAD mirrors the PKG's trapdoor sealing context.
const keywordAAD = "mwskit/keyserver/trapdoor/v1"

// FetchTrapdoor obtains a PEKS keyword trapdoor from the PKG using the
// credentials of an earlier Retrieve. The keyword travels sealed under
// the RC–PKG session key in both directions.
func (c *Client) FetchTrapdoor(pkg *wire.Client, r *Retrieval, keyword string) ([]byte, error) {
	scheme, err := symenc.ByName("AES-256-GCM")
	if err != nil {
		return nil, err
	}
	sealedKw, err := scheme.Seal(r.SessionKey, []byte(keyword), []byte(keywordAAD))
	if err != nil {
		return nil, err
	}
	authBlob, err := ticket.SealAuthenticator(r.SessionKey, &ticket.Authenticator{
		RC:        c.id,
		Timestamp: c.now(),
	})
	if err != nil {
		return nil, err
	}
	req := wire.TrapdoorRequest{
		RC:            c.id,
		TicketBlob:    r.TicketBlob,
		Authenticator: authBlob,
		SealedKeyword: sealedKw,
	}
	resp, err := pkg.Do(wire.Frame{Type: wire.TTrapdoor, Payload: req.Marshal()})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.TTrapdoorResp {
		return nil, fmt.Errorf("rclient: unexpected response type %s", resp.Type)
	}
	tr, err := wire.UnmarshalTrapdoorResponse(resp.Payload)
	if err != nil {
		return nil, err
	}
	trapdoor, err := scheme.Open(r.SessionKey, tr.SealedTrapdoor, []byte(keywordAAD))
	if err != nil {
		return nil, fmt.Errorf("rclient: sealed trapdoor: %w", err)
	}
	return trapdoor, nil
}

// Search runs a keyword-filtered retrieval: the MWS tests each message's
// encrypted tags against the trapdoor and returns only matches (which
// the caller then decrypts as usual with FetchKeys/Decrypt).
func (c *Client) Search(mws *wire.Client, trapdoor []byte, fromSeq uint64, limit uint32) (*Retrieval, error) {
	authBlob, err := ticket.SealAuthenticator(c.credKey, &ticket.Authenticator{
		RC:        c.id,
		Timestamp: c.now(),
	})
	if err != nil {
		return nil, err
	}
	req := wire.RetrieveRequest{
		RC:       c.id,
		AuthBlob: authBlob,
		FromSeq:  fromSeq,
		Limit:    limit,
		Trapdoor: trapdoor,
	}
	resp, err := mws.Do(wire.Frame{Type: wire.TRetrieve, Payload: req.Marshal()})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.TRetrieveResp {
		return nil, fmt.Errorf("rclient: unexpected response type %s", resp.Type)
	}
	rr, err := wire.UnmarshalRetrieveResponse(resp.Payload)
	if err != nil {
		return nil, err
	}
	tok, err := ticket.OpenToken(c.priv, rr.TokenBlob)
	if err != nil {
		return nil, fmt.Errorf("rclient: token: %w", err)
	}
	return &Retrieval{Items: rr.Items, SessionKey: tok.SessionKey, TicketBlob: tok.TicketBlob}, nil
}
