// Package rclient implements the receiving-client side of the protocol
// (§V.C/D, MWS–RC and RC–PKG phases): authenticate to the Gatekeeper,
// receive encrypted messages plus a PKG token, unwrap the token with the
// client's RSA key, present ticket + authenticator to the PKG to obtain
// the per-message private keys sI, and finally decapsulate and decrypt
// each message.
//
// Throughout, the client handles attributes only as opaque AIDs; the
// actual attribute strings stay inside the sealed ticket (§V.D).
package rclient

import (
	"context"
	"crypto/rsa"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"mwskit/internal/attr"
	"mwskit/internal/bfibe"
	"mwskit/internal/keyserver"
	"mwskit/internal/obsv"
	"mwskit/internal/symenc"
	"mwskit/internal/ticket"
	"mwskit/internal/userdb"
	"mwskit/internal/wire"
)

// Client is a receiving client. Immutable after construction.
type Client struct {
	id      string
	credKey []byte
	priv    *rsa.PrivateKey
	params  *bfibe.Params
	rand    io.Reader
	now     func() time.Time
}

// Option customizes a Client.
type Option func(*Client)

// WithRand overrides the entropy source.
func WithRand(r io.Reader) Option { return func(c *Client) { c.rand = r } }

// WithClock overrides the timestamp source.
func WithClock(now func() time.Time) Option { return func(c *Client) { c.now = now } }

// New builds a receiving client from its registration artifacts. The
// credential key is derived from the password exactly as the user
// database derives it at registration.
func New(id string, password []byte, priv *rsa.PrivateKey, params *bfibe.Params, opts ...Option) (*Client, error) {
	if id == "" {
		return nil, errors.New("rclient: empty identity")
	}
	if len(password) == 0 {
		return nil, errors.New("rclient: empty password")
	}
	if priv == nil {
		return nil, errors.New("rclient: nil private key")
	}
	if params == nil {
		return nil, errors.New("rclient: nil IBE parameters")
	}
	c := &Client{
		id:      id,
		credKey: userdb.CredentialKey(id, password),
		priv:    priv,
		params:  params,
		rand:    attr.RandReader,
		now:     time.Now,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// ID returns the client identity.
func (c *Client) ID() string { return c.id }

// Envelope is one retrieved-but-not-yet-decrypted message.
type Envelope = wire.MessageItem

// Retrieval is the result of the MWS–RC phase: the encrypted messages and
// the credentials needed for the RC–PKG phase.
type Retrieval struct {
	Items      []Envelope
	SessionKey []byte
	TicketBlob []byte
}

// Retrieve runs the MWS–RC phase: authenticate, fetch messages after the
// cursor, and unwrap the PKG token.
func (c *Client) Retrieve(mws *wire.Client, fromSeq uint64, limit uint32) (*Retrieval, error) {
	return c.RetrieveContext(background(), mws, fromSeq, limit)
}

// background is the shared root for the package's context-free
// convenience wrappers; cancellation-aware callers use the Context
// variants directly.
func background() context.Context {
	//mwslint:ignore ctxflow single annotated root for the context-free convenience wrappers; request paths use the Context variants
	return context.Background()
}

// RetrieveContext is Retrieve under a request context: when the context
// carries a trace span, the current trace rides the retrieve frame so
// the warehouse's spans stitch to the client's, and the token unwrap
// lands as its own child span.
func (c *Client) RetrieveContext(ctx context.Context, mws *wire.Client, fromSeq uint64, limit uint32) (*Retrieval, error) {
	authBlob, err := ticket.SealAuthenticator(c.credKey, &ticket.Authenticator{
		RC:        c.id,
		Timestamp: c.now(),
	})
	if err != nil {
		return nil, err
	}
	req := wire.RetrieveRequest{RC: c.id, AuthBlob: authBlob, FromSeq: fromSeq, Limit: limit}
	rpcCtx, rpcSp := obsv.StartSpan(ctx, "rpc.retrieve")
	resp, err := mws.Do(wire.Frame{Type: wire.TRetrieve, Payload: req.Marshal(), Trace: obsv.ContextTrace(rpcCtx)})
	rpcSp.SetErr(err)
	rpcSp.End()
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.TRetrieveResp {
		return nil, fmt.Errorf("rclient: unexpected response type %s", resp.Type)
	}
	rr, err := wire.UnmarshalRetrieveResponse(resp.Payload)
	if err != nil {
		return nil, err
	}
	_, tokSp := obsv.StartSpan(ctx, "token.open")
	tok, err := ticket.OpenToken(c.priv, rr.TokenBlob)
	tokSp.SetErr(err)
	tokSp.End()
	if err != nil {
		return nil, fmt.Errorf("rclient: token: %w", err)
	}
	return &Retrieval{Items: rr.Items, SessionKey: tok.SessionKey, TicketBlob: tok.TicketBlob}, nil
}

// FetchKeys runs the RC–PKG phase for the given retrieval: one extract
// request covering the distinct (AID, Nonce) pairs, returning the private
// keys indexed identically to the request items it derives.
func (c *Client) FetchKeys(pkg *wire.Client, r *Retrieval) (map[keyIndex]*bfibe.PrivateKey, []wire.ExtractItem, error) {
	return c.FetchKeysContext(background(), pkg, r)
}

// FetchKeysContext is FetchKeys under a request context: the current
// trace (if any) rides the extract frame so the PKG's spans stitch to
// the client's.
func (c *Client) FetchKeysContext(ctx context.Context, pkg *wire.Client, r *Retrieval) (map[keyIndex]*bfibe.PrivateKey, []wire.ExtractItem, error) {
	// Deduplicate (AID, nonce) pairs: several messages can share a key
	// only if a device reused a nonce, which compliant devices never do,
	// but the dedup keeps the request minimal either way.
	seen := make(map[keyIndex]int)
	var items []wire.ExtractItem
	for _, it := range r.Items {
		k := keyIndexOf(it.AID, it.Nonce)
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = len(items)
		items = append(items, wire.ExtractItem{AID: it.AID, Nonce: it.Nonce})
	}
	if len(items) == 0 {
		return map[keyIndex]*bfibe.PrivateKey{}, nil, nil
	}
	authBlob, err := ticket.SealAuthenticator(r.SessionKey, &ticket.Authenticator{
		RC:        c.id,
		Timestamp: c.now(),
	})
	if err != nil {
		return nil, nil, err
	}
	req := wire.ExtractRequest{
		RC:            c.id,
		TicketBlob:    r.TicketBlob,
		Authenticator: authBlob,
		Items:         items,
	}
	rpcCtx, rpcSp := obsv.StartSpan(ctx, "rpc.extract")
	resp, err := pkg.Do(wire.Frame{Type: wire.TExtract, Payload: req.Marshal(), Trace: obsv.ContextTrace(rpcCtx)})
	rpcSp.SetErr(err)
	rpcSp.End()
	if err != nil {
		return nil, nil, err
	}
	if resp.Type != wire.TExtractResp {
		return nil, nil, fmt.Errorf("rclient: unexpected response type %s", resp.Type)
	}
	er, err := wire.UnmarshalExtractResponse(resp.Payload)
	if err != nil {
		return nil, nil, err
	}
	if len(er.SealedKeys) != len(items) {
		return nil, nil, fmt.Errorf("rclient: got %d keys for %d items", len(er.SealedKeys), len(items))
	}
	_, openSp := obsv.StartSpan(ctx, "keys.open")
	keys := make(map[keyIndex]*bfibe.PrivateKey, len(items))
	for i, sealed := range er.SealedKeys {
		sk, err := keyserver.OpenSealedKey(c.params, r.SessionKey, sealed)
		if err != nil {
			openSp.SetErr(err)
			openSp.End()
			return nil, nil, err
		}
		keys[keyIndexOf(items[i].AID, items[i].Nonce)] = sk
	}
	openSp.End()
	return keys, items, nil
}

// Message is a fully decrypted warehouse message.
type Message struct {
	Seq       uint64
	DeviceID  string
	Timestamp int64
	Payload   []byte
}

// Decrypt opens one envelope with its private key: decapsulate the
// session key from rP via ê(sI, rP) and open the symmetric ciphertext.
func (c *Client) Decrypt(env *Envelope, sk *bfibe.PrivateKey) (*Message, error) {
	d, err := c.params.NewDecapsulator(sk)
	if err != nil {
		return nil, err
	}
	return c.decryptWith(env, d)
}

// decryptWith opens one envelope through a prepared Decapsulator, so
// batch callers amortize the key's pairing precomputation.
func (c *Client) decryptWith(env *Envelope, d *bfibe.Decapsulator) (*Message, error) {
	scheme, err := symenc.ByName(env.Scheme)
	if err != nil {
		return nil, err
	}
	enc, err := bfibe.UnmarshalEncapsulation(c.params, env.U)
	if err != nil {
		return nil, err
	}
	key, err := d.Decapsulate(enc, scheme.KeyLen())
	if err != nil {
		return nil, err
	}
	aad := wire.MessageAAD(env.DeviceID, env.Timestamp, env.Nonce, env.U)
	payload, err := scheme.Open(key, env.Ciphertext, aad)
	if err != nil {
		return nil, fmt.Errorf("rclient: message %d: %w", env.Seq, err)
	}
	return &Message{
		Seq:       env.Seq,
		DeviceID:  env.DeviceID,
		Timestamp: env.Timestamp,
		Payload:   payload,
	}, nil
}

// DecryptRetrieval decrypts every message in a retrieval with the
// extracted keys, in deposit order, fanning the per-message pairing work
// across a GOMAXPROCS-wide worker pool. The pairing's Miller-loop lines
// are precomputed once per key (bfibe.Decapsulator) and shared by all
// messages under that key — the batch-decryption shape the multi-pairing
// layer exists for — so each message pays only the F_p² accumulation,
// the final exponentiation, and an AEAD open. The first failure (a
// missing key, a bad point, a forged ciphertext) cancels the remaining
// work.
func (c *Client) DecryptRetrieval(ctx context.Context, r *Retrieval, keys map[keyIndex]*bfibe.PrivateKey) ([]*Message, error) {
	if len(r.Items) == 0 {
		return nil, nil
	}
	_, decSp := obsv.StartSpan(ctx, "ibe.decapsulate")
	decSp.SetAttr("messages", fmt.Sprintf("%d", len(r.Items)))
	defer decSp.End()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// One Decapsulator per distinct key, built up front: every message of
	// a (attribute, nonce) group reuses its key's precomputed lines.
	decaps := make(map[keyIndex]*bfibe.Decapsulator, len(keys))
	for ki, sk := range keys {
		d, err := c.params.NewDecapsulator(sk)
		if err != nil {
			return nil, err
		}
		decaps[ki] = d
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(r.Items) {
		workers = len(r.Items)
	}
	out := make([]*Message, len(r.Items))
	idx := make(chan int)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err; cancel() })
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				env := &r.Items[i]
				d, ok := decaps[keyIndexOf(env.AID, env.Nonce)]
				if !ok {
					fail(fmt.Errorf("rclient: missing key for message %d", env.Seq))
					return
				}
				m, err := c.decryptWith(env, d)
				if err != nil {
					fail(err)
					return
				}
				out[i] = m
			}
		}()
	}
feed:
	for i := range r.Items {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// RetrieveAndDecrypt runs the full client pipeline: MWS retrieval, PKG
// key extraction, and parallel message decryption, returning plaintext
// messages in deposit order.
func (c *Client) RetrieveAndDecrypt(mws, pkg *wire.Client, fromSeq uint64, limit uint32) ([]*Message, error) {
	return c.RetrieveAndDecryptContext(background(), mws, pkg, fromSeq, limit)
}

// RetrieveAndDecryptContext is RetrieveAndDecrypt under a request
// context, tracing each phase when the context carries a span.
func (c *Client) RetrieveAndDecryptContext(ctx context.Context, mws, pkg *wire.Client, fromSeq uint64, limit uint32) ([]*Message, error) {
	r, err := c.RetrieveContext(ctx, mws, fromSeq, limit)
	if err != nil {
		return nil, err
	}
	if len(r.Items) == 0 {
		return nil, nil
	}
	keys, _, err := c.FetchKeysContext(ctx, pkg, r)
	if err != nil {
		return nil, err
	}
	return c.DecryptRetrieval(ctx, r, keys)
}

// keyIndex identifies a private key by (AID, nonce).
type keyIndex struct {
	aid   uint64
	nonce attr.Nonce
}

func keyIndexOf(aid uint64, nonce []byte) keyIndex {
	var n attr.Nonce
	copy(n[:], nonce)
	return keyIndex{aid: aid, nonce: n}
}
