package rclient

import (
	"bytes"
	"crypto/rand"
	"crypto/rsa"
	"sync"
	"testing"

	"mwskit/internal/attr"
	"mwskit/internal/bfibe"
	"mwskit/internal/pairing"
	"mwskit/internal/symenc"
	"mwskit/internal/wire"
)

var (
	envOnce sync.Once
	envP    *bfibe.Params
	envM    *bfibe.MasterKey
	envRSA  *rsa.PrivateKey
)

func env(t *testing.T) (*bfibe.Params, *bfibe.MasterKey, *rsa.PrivateKey) {
	t.Helper()
	envOnce.Do(func() {
		sys := pairing.ParamsTest.MustSystem()
		var err error
		envP, envM, err = bfibe.Setup(sys, rand.Reader)
		if err != nil {
			panic(err)
		}
		envRSA, err = rsa.GenerateKey(rand.Reader, 2048)
		if err != nil {
			panic(err)
		}
	})
	return envP, envM, envRSA
}

func TestNewValidation(t *testing.T) {
	params, _, key := env(t)
	if _, err := New("", []byte("pw"), key, params); err == nil {
		t.Error("empty identity accepted")
	}
	if _, err := New("rc", nil, key, params); err == nil {
		t.Error("empty password accepted")
	}
	if _, err := New("rc", []byte("pw"), nil, params); err == nil {
		t.Error("nil private key accepted")
	}
	if _, err := New("rc", []byte("pw"), key, nil); err == nil {
		t.Error("nil params accepted")
	}
	c, err := New("rc", []byte("pw"), key, params)
	if err != nil {
		t.Fatal(err)
	}
	if c.ID() != "rc" {
		t.Error("ID lost")
	}
}

// buildEnvelope plays the device + MWS roles offline to produce an
// Envelope and its matching private key.
func buildEnvelope(t *testing.T, params *bfibe.Params, master *bfibe.MasterKey, payload []byte) (*Envelope, *bfibe.PrivateKey) {
	t.Helper()
	scheme := symenc.Default()
	a := attr.Attribute("ELECTRIC-X")
	nonce, err := attr.NewNonce(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	identity := attr.Identity(a, nonce)
	enc, key, err := params.Encapsulate(identity, scheme.KeyLen(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	u := bfibe.MarshalEncapsulation(params, enc)
	aad := wire.MessageAAD("meter", 1278000000, nonce[:], u)
	ct, err := scheme.Seal(key, payload, aad)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := master.Extract(params, identity)
	if err != nil {
		t.Fatal(err)
	}
	return &Envelope{
		Seq:        7,
		AID:        1,
		Nonce:      nonce[:],
		U:          u,
		Ciphertext: ct,
		Scheme:     scheme.Name(),
		DeviceID:   "meter",
		Timestamp:  1278000000,
	}, sk
}

func TestDecrypt(t *testing.T) {
	params, master, key := env(t)
	c, err := New("rc", []byte("pw"), key, params)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("offline decrypt")
	env, sk := buildEnvelope(t, params, master, payload)
	m, err := c.Decrypt(env, sk)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.Payload, payload) || m.Seq != 7 || m.DeviceID != "meter" {
		t.Fatalf("decrypted message wrong: %+v", m)
	}
}

func TestDecryptRejectsTampering(t *testing.T) {
	params, master, key := env(t)
	c, err := New("rc", []byte("pw"), key, params)
	if err != nil {
		t.Fatal(err)
	}
	fresh := func() (*Envelope, *bfibe.PrivateKey) {
		return buildEnvelope(t, params, master, []byte("payload"))
	}

	t.Run("Ciphertext", func(t *testing.T) {
		env, sk := fresh()
		env.Ciphertext[0] ^= 1
		if _, err := c.Decrypt(env, sk); err == nil {
			t.Fatal("tampered ciphertext accepted")
		}
	})
	t.Run("DeviceIDBinding", func(t *testing.T) {
		// The AAD binds the device ID: a relabeled envelope must fail.
		env, sk := fresh()
		env.DeviceID = "impostor-meter"
		if _, err := c.Decrypt(env, sk); err == nil {
			t.Fatal("relabeled device accepted")
		}
	})
	t.Run("TimestampBinding", func(t *testing.T) {
		env, sk := fresh()
		env.Timestamp++
		if _, err := c.Decrypt(env, sk); err == nil {
			t.Fatal("shifted timestamp accepted")
		}
	})
	t.Run("WrongKey", func(t *testing.T) {
		env, _ := fresh()
		otherNonce, _ := attr.NewNonce(rand.Reader)
		wrong, err := master.Extract(params, attr.Identity("ELECTRIC-X", otherNonce))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Decrypt(env, wrong); err == nil {
			t.Fatal("wrong-nonce key accepted")
		}
	})
	t.Run("UnknownScheme", func(t *testing.T) {
		env, sk := fresh()
		env.Scheme = "ROT13"
		if _, err := c.Decrypt(env, sk); err == nil {
			t.Fatal("unknown scheme accepted")
		}
	})
	t.Run("GarbageU", func(t *testing.T) {
		env, sk := fresh()
		env.U = []byte{1, 2, 3}
		if _, err := c.Decrypt(env, sk); err == nil {
			t.Fatal("garbage transport point accepted")
		}
	})
}

func TestKeyIndexOf(t *testing.T) {
	n1 := bytes.Repeat([]byte{1}, attr.NonceLen)
	n2 := bytes.Repeat([]byte{2}, attr.NonceLen)
	if keyIndexOf(1, n1) != keyIndexOf(1, n1) {
		t.Fatal("identical inputs produced different indices")
	}
	if keyIndexOf(1, n1) == keyIndexOf(2, n1) {
		t.Fatal("AID not part of the index")
	}
	if keyIndexOf(1, n1) == keyIndexOf(1, n2) {
		t.Fatal("nonce not part of the index")
	}
}
