package macauth

import (
	"bytes"
	"crypto/rand"
	"testing"
	"time"

	"mwskit/internal/wal"
)

func TestComputeVerify(t *testing.T) {
	key := bytes.Repeat([]byte{7}, KeyLen)
	parts := [][]byte{[]byte("rP"), []byte("C"), []byte("A||nonce"), []byte("meter-1"), []byte("1278000000")}
	mac := Compute(key, parts...)
	if !Verify(key, mac, parts...) {
		t.Fatal("MAC failed to verify")
	}
	// Any part change must break verification.
	for i := range parts {
		mutated := make([][]byte, len(parts))
		copy(mutated, parts)
		mutated[i] = append([]byte(nil), parts[i]...)
		if len(mutated[i]) == 0 {
			mutated[i] = []byte{1}
		} else {
			mutated[i][0] ^= 1
		}
		if Verify(key, mac, mutated...) {
			t.Fatalf("MAC verified despite mutated part %d", i)
		}
	}
	// Wrong key.
	if Verify(bytes.Repeat([]byte{8}, KeyLen), mac, parts...) {
		t.Fatal("MAC verified under wrong key")
	}
}

func TestComputeBoundaryUnambiguity(t *testing.T) {
	key := bytes.Repeat([]byte{1}, KeyLen)
	// ("ab","c") must MAC differently from ("a","bc") — fields are
	// length-prefixed precisely to prevent splice attacks.
	m1 := Compute(key, []byte("ab"), []byte("c"))
	m2 := Compute(key, []byte("a"), []byte("bc"))
	if bytes.Equal(m1, m2) {
		t.Fatal("part boundaries are ambiguous")
	}
}

func TestKeyServiceRegisterAndLookup(t *testing.T) {
	ks, err := OpenKeyService(t.TempDir(), wal.SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer ks.Close()
	key, err := ks.Register("meter-1", rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if len(key) != KeyLen {
		t.Fatalf("key length %d", len(key))
	}
	got, ok := ks.Key("meter-1")
	if !ok || !bytes.Equal(got, key) {
		t.Fatal("stored key mismatch")
	}
	if _, ok := ks.Key("meter-2"); ok {
		t.Fatal("unknown device has a key")
	}
	if _, err := ks.Register("meter-1", rand.Reader); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if _, err := ks.Register("", rand.Reader); err == nil {
		t.Fatal("empty device ID accepted")
	}
}

func TestKeyServiceRevoke(t *testing.T) {
	ks, err := OpenKeyService(t.TempDir(), wal.SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer ks.Close()
	if _, err := ks.Register("meter-1", rand.Reader); err != nil {
		t.Fatal(err)
	}
	if err := ks.Revoke("meter-1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := ks.Key("meter-1"); ok {
		t.Fatal("revoked device still has a key")
	}
}

func TestKeyServiceDurability(t *testing.T) {
	dir := t.TempDir()
	ks, err := OpenKeyService(dir, wal.SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	key, err := ks.Register("meter-1", rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := ks.Close(); err != nil {
		t.Fatal(err)
	}
	ks2, err := OpenKeyService(dir, wal.SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer ks2.Close()
	got, ok := ks2.Key("meter-1")
	if !ok || !bytes.Equal(got, key) {
		t.Fatal("device key lost across reopen")
	}
	devices := ks2.Devices()
	if len(devices) != 1 || devices[0] != "meter-1" {
		t.Fatalf("Devices = %v", devices)
	}
}

func TestReplayGuard(t *testing.T) {
	g := NewReplayGuard(time.Minute)
	now := time.Unix(1278000000, 0)
	mac := []byte("mac-bytes-1")

	if err := g.Check(mac, now, now); err != nil {
		t.Fatalf("fresh message rejected: %v", err)
	}
	if err := g.Check(mac, now, now.Add(time.Second)); err != ErrReplay {
		t.Fatalf("replay: err = %v, want ErrReplay", err)
	}
	// Different MAC passes.
	if err := g.Check([]byte("mac-bytes-2"), now, now); err != nil {
		t.Fatalf("distinct message rejected: %v", err)
	}
	// Stale timestamp rejected before cache insert.
	old := now.Add(-5 * time.Minute)
	if err := g.Check([]byte("mac-old"), old, now); err != ErrStale {
		t.Fatalf("stale: err = %v, want ErrStale", err)
	}
	// Future timestamp beyond skew rejected.
	future := now.Add(5 * time.Minute)
	if err := g.Check([]byte("mac-future"), future, now); err != ErrStale {
		t.Fatalf("future: err = %v, want ErrStale", err)
	}
}

func TestReplayGuardPruning(t *testing.T) {
	g := NewReplayGuard(time.Minute)
	base := time.Unix(1278000000, 0)
	for i := 0; i < 100; i++ {
		mac := []byte{byte(i)}
		if err := g.Check(mac, base, base); err != nil {
			t.Fatal(err)
		}
	}
	if g.Len() != 100 {
		t.Fatalf("cache size %d", g.Len())
	}
	// Far in the future, old entries are pruned on the next check.
	later := base.Add(10 * time.Minute)
	if err := g.Check([]byte("new"), later, later); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("cache not pruned: %d entries", g.Len())
	}
}
