// Package macauth implements the smart-device authentication path of the
// paper (§V.B, Smart Device Authenticator): every deposited message
// carries MAC = H_K(SecK_SD-MWS, rP ‖ C ‖ Nonce ‖ ID_SD ‖ T), computed
// with a symmetric key shared at device registration. The SDA recomputes
// the MAC, verifies freshness of the timestamp, and rejects replays.
//
// The paper's H_K is instantiated as HMAC-SHA256; per-device keys live in
// a KV-backed key-management service, and a replay guard remembers
// recently accepted MACs within the freshness window.
package macauth

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"mwskit/internal/storage"
)

// KeyLen is the byte length of device MAC keys.
const KeyLen = 32

// Compute returns HMAC-SHA256 over the length-delimited parts. Parts are
// length-prefixed so field boundaries can never be confused (e.g. a
// ciphertext ending in the device ID's bytes).
func Compute(key []byte, parts ...[]byte) []byte {
	m := hmac.New(sha256.New, key)
	var lenBuf [4]byte
	for _, p := range parts {
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(p)))
		m.Write(lenBuf[:])
		m.Write(p)
	}
	return m.Sum(nil)
}

// Verify reports whether mac authenticates the parts under key, in
// constant time.
func Verify(key, mac []byte, parts ...[]byte) bool {
	return hmac.Equal(mac, Compute(key, parts...))
}

// KeyService is the key-management component the SDA consults (§V.B):
// a durable map from device identity to its shared MAC key.
type KeyService struct {
	mu sync.RWMutex
	kv storage.KV
	// closer is set only for standalone stores opened via OpenKeyService;
	// provider-supplied KVs (NewKeyService) are closed by their provider.
	closer io.Closer
}

// OpenKeyService opens (or creates) a standalone device-key store at
// dir. Services running over a storage.Provider should pass the
// provider's KV to NewKeyService instead.
func OpenKeyService(dir string, sync storage.SyncPolicy) (*KeyService, error) {
	kv, err := storage.OpenKV(dir, sync)
	if err != nil {
		return nil, err
	}
	return &KeyService{kv: kv, closer: kv}, nil
}

// NewKeyService builds the key service over an existing KV (typically
// storage.Provider.KV("devices")); the provider keeps lifecycle
// ownership.
func NewKeyService(kv storage.KV) *KeyService { return &KeyService{kv: kv} }

// Register draws a fresh key for the device and stores it, returning the
// key for delivery to the device over the registration channel (the
// paper leaves the initial exchange out of scope; so do we).
func (ks *KeyService) Register(deviceID string, rng io.Reader) ([]byte, error) {
	if deviceID == "" {
		return nil, errors.New("macauth: empty device ID")
	}
	key := make([]byte, KeyLen)
	if _, err := io.ReadFull(rng, key); err != nil {
		return nil, fmt.Errorf("macauth: keygen: %w", err)
	}
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if _, exists := ks.kv.Get(deviceID); exists {
		return nil, fmt.Errorf("macauth: device %q already registered", deviceID)
	}
	if err := ks.kv.Put(deviceID, key); err != nil {
		return nil, err
	}
	return key, nil
}

// Key returns the shared key for a registered device.
func (ks *KeyService) Key(deviceID string) ([]byte, bool) {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	return ks.kv.Get(deviceID)
}

// Revoke removes a device's key; subsequent deposits from it fail
// authentication.
func (ks *KeyService) Revoke(deviceID string) error {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	return ks.kv.Delete(deviceID)
}

// Devices lists registered device IDs, sorted.
func (ks *KeyService) Devices() []string { return ks.kv.Keys() }

// Close releases the underlying store when this service owns it (opened
// via OpenKeyService); a no-op for provider-backed services.
func (ks *KeyService) Close() error {
	if ks.closer != nil {
		return ks.closer.Close()
	}
	return nil
}

// RandReader is the default entropy source for Register.
var RandReader io.Reader = rand.Reader

// ReplayGuard rejects MACs it has already accepted within the freshness
// window. Entries older than the window are pruned lazily, so memory is
// bounded by the accept rate × window.
type ReplayGuard struct {
	window time.Duration

	mu   sync.Mutex
	seen map[string]time.Time
}

// NewReplayGuard builds a guard with the given freshness window.
func NewReplayGuard(window time.Duration) *ReplayGuard {
	return &ReplayGuard{window: window, seen: make(map[string]time.Time)}
}

// Errors returned by Check.
var (
	ErrStale  = errors.New("macauth: timestamp outside freshness window")
	ErrReplay = errors.New("macauth: message replayed")
)

// Check validates freshness of ts against now and records the MAC,
// rejecting exact replays. It must be called only after MAC verification
// succeeds (a forged MAC must not pollute the cache).
func (g *ReplayGuard) Check(mac []byte, ts, now time.Time) error {
	if d := now.Sub(ts); d > g.window || d < -g.window {
		return ErrStale
	}
	key := string(mac)
	g.mu.Lock()
	defer g.mu.Unlock()
	// Lazy prune: drop expired entries while we hold the lock.
	cutoff := now.Add(-2 * g.window)
	for k, t := range g.seen {
		if t.Before(cutoff) {
			delete(g.seen, k)
		}
	}
	if _, dup := g.seen[key]; dup {
		return ErrReplay
	}
	g.seen[key] = now
	return nil
}

// Len reports the number of cached MACs (for tests and metrics).
func (g *ReplayGuard) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.seen)
}
