// Command mwslint runs the project's static-analysis suite: the coding
// invariants behind the paper's confidentiality argument (constant-time
// tag comparison, CSPRNG-only randomness, no secrets in logs, context
// propagation, wire op/route/codec consistency), enforced at build time.
//
// Usage:
//
//	mwslint [-C dir] [packages]
//
// Packages default to ./... relative to dir. Exit status is 1 when any
// analyzer reports an unsuppressed diagnostic, 2 when loading fails.
// Suppress a finding with an annotated, justified ignore:
//
//	//mwslint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"

	"mwskit/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("mwslint", flag.ContinueOnError)
	dir := fs.String("C", ".", "change to `dir` before resolving package patterns")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.Run(*dir, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mwslint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mwslint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
