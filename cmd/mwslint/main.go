// Command mwslint runs the project's static-analysis suite: the coding
// invariants behind the paper's confidentiality argument (constant-time
// tag comparison, CSPRNG-only randomness, no secrets in logs, context
// propagation, wire op/route/codec consistency, and the interprocedural
// taint invariants — plaintext/private keys never reach storage or the
// wire, no constant or reused nonces, key material wiped on error
// paths), enforced at build time.
//
// Usage:
//
//	mwslint [-C dir] [-json] [packages]
//
// Packages default to ./... relative to dir. Exit status is 1 when any
// analyzer reports an unsuppressed diagnostic, 2 when loading fails.
// With -json each diagnostic is emitted as one JSON object per line
// (file/line/col/analyzer/message) for CI annotation tooling; exit
// codes are unchanged. Suppress a finding with an annotated, justified
// ignore:
//
//	//mwslint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mwskit/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// jsonDiagnostic is the -json wire shape, one object per line.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string) int {
	fs := flag.NewFlagSet("mwslint", flag.ContinueOnError)
	dir := fs.String("C", ".", "change to `dir` before resolving package patterns")
	list := fs.Bool("list", false, "list the analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit one JSON diagnostic per line instead of plain text")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.Run(*dir, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mwslint:", err)
		return 2
	}
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if *jsonOut {
			// Encode cannot fail on this shape; one object per line.
			enc.Encode(jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
			continue
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mwslint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
