// Command mwslint runs the project's static-analysis suite: the coding
// invariants behind the paper's confidentiality argument (constant-time
// tag comparison, CSPRNG-only randomness, no secrets in logs, context
// propagation, wire op/route/codec consistency, the interprocedural
// taint invariants — plaintext/private keys never reach storage or the
// wire, no constant or reused nonces, key material wiped on error
// paths — and the concurrency invariants: consistent lock ordering, no
// blocking I/O under storage locks, no mixed atomic/plain access, no
// leaked goroutines), enforced at build time.
//
// Usage:
//
//	mwslint [-C dir] [-json] [-sarif file] [-only names] [-skip names]
//	        [-timings] [-baseline file] [packages]
//
// Packages default to ./... relative to dir. Exit status is 1 when any
// analyzer reports an unsuppressed diagnostic (or the suppression
// baseline is exceeded), 2 when loading fails. With -json each
// diagnostic is emitted as one JSON object per line
// (file/line/col/analyzer/message), followed by a single trailing
// summary object ("summary":true) carrying the suppressed findings
// (analyzer, position, reason), the declassification points, and
// per-analyzer timings; exit codes are unchanged. -sarif additionally
// writes the full report (findings, suppressions with in-source
// justifications, declassifications) as a SARIF 2.1.0 log for
// code-scanning upload. -only and -skip take comma-separated analyzer
// names (mutually exclusive; unknown names are an error, a typo must
// not silently run the wrong set). -timings prints per-analyzer wall
// times to stderr. -baseline reads
//
//	{"suppressions": N, "analyzers": {"<name>": N, ...}}
//
// and fails the run when the tree carries more suppressions than the
// checked-in budget — in total, or for any single analyzer when the
// per-analyzer map is present (an analyzer absent from the map has
// budget zero) — so silencing a finding is a reviewed change, not a
// drive-by, and the constant-time debt ctflow tracks can only shrink.
// Suppress a finding with an annotated, justified ignore:
//
//	//mwslint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mwskit/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// splitNames parses a comma-separated flag value into names, dropping
// empty segments ("" parses to nil, so an unset flag selects nothing).
func splitNames(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// jsonDiagnostic is the -json wire shape, one object per line.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonSuppression is one silenced finding in the -json summary.
type jsonSuppression struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
}

// jsonTiming is one analyzer's wall time in the -json summary.
type jsonTiming struct {
	Analyzer string  `json:"analyzer"`
	Millis   float64 `json:"ms"`
}

// jsonDeclassification is one //mwslint:declassify point in the -json
// summary.
type jsonDeclassification struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Col    int    `json:"col"`
	Reason string `json:"reason"`
}

// jsonSummary is the single trailing -json object; "summary":true
// distinguishes it from diagnostic lines.
type jsonSummary struct {
	Summary      bool                   `json:"summary"`
	Findings     int                    `json:"findings"`
	Suppressed   []jsonSuppression      `json:"suppressed"`
	Declassified []jsonDeclassification `json:"declassified"`
	Timings      []jsonTiming           `json:"timings"`
}

// baselineFile is the checked-in suppression budget: a total, plus an
// optional per-analyzer pin. When Analyzers is present, an analyzer
// missing from it has budget zero.
type baselineFile struct {
	Suppressions int            `json:"suppressions"`
	Analyzers    map[string]int `json:"analyzers"`
}

func run(args []string) int {
	fs := flag.NewFlagSet("mwslint", flag.ContinueOnError)
	dir := fs.String("C", ".", "change to `dir` before resolving package patterns")
	list := fs.Bool("list", false, "list the analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit one JSON diagnostic per line plus a trailing summary object")
	sarifOut := fs.String("sarif", "", "write the full report as a SARIF 2.1.0 log to `file`")
	only := fs.String("only", "", "run only these `analyzers` (comma-separated; unknown names are an error)")
	skip := fs.String("skip", "", "run all but these `analyzers` (comma-separated; unknown names are an error)")
	timings := fs.Bool("timings", false, "print per-analyzer wall times to stderr")
	baseline := fs.String("baseline", "", "JSON `file` with {\"suppressions\": N, \"analyzers\": {...}}; fail if the tree exceeds it")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := lint.SelectAnalyzers(analyzers, splitNames(*only), splitNames(*skip))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mwslint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	rep, err := lint.RunReport(*dir, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mwslint:", err)
		return 2
	}
	enc := json.NewEncoder(os.Stdout)
	for _, d := range rep.Diags {
		if *jsonOut {
			// Encode cannot fail on this shape; one object per line.
			enc.Encode(jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
			continue
		}
		fmt.Println(d)
	}
	if *jsonOut {
		sum := jsonSummary{
			Summary:      true,
			Findings:     len(rep.Diags),
			Suppressed:   make([]jsonSuppression, 0, len(rep.Suppressed)),
			Declassified: make([]jsonDeclassification, 0, len(rep.Declassified)),
			Timings:      make([]jsonTiming, 0, len(rep.Timings)),
		}
		for _, s := range rep.Suppressed {
			sum.Suppressed = append(sum.Suppressed, jsonSuppression{
				File:     s.Pos.Filename,
				Line:     s.Pos.Line,
				Col:      s.Pos.Column,
				Analyzer: s.Analyzer,
				Reason:   s.Reason,
			})
		}
		for _, dc := range rep.Declassified {
			sum.Declassified = append(sum.Declassified, jsonDeclassification{
				File:   dc.Pos.Filename,
				Line:   dc.Pos.Line,
				Col:    dc.Pos.Column,
				Reason: dc.Reason,
			})
		}
		for _, tm := range rep.Timings {
			sum.Timings = append(sum.Timings, jsonTiming{
				Analyzer: tm.Analyzer,
				Millis:   float64(tm.Duration.Microseconds()) / 1000,
			})
		}
		enc.Encode(sum)
	}
	if *timings {
		for _, tm := range rep.Timings {
			fmt.Fprintf(os.Stderr, "mwslint: %-14s %8.1fms\n", tm.Analyzer, float64(tm.Duration.Microseconds())/1000)
		}
	}
	if *sarifOut != "" {
		f, err := os.Create(*sarifOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mwslint: sarif:", err)
			return 2
		}
		base, berr := filepath.Abs(*dir)
		if berr != nil {
			base = *dir
		}
		werr := lint.WriteSARIF(f, rep, analyzers, base)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "mwslint: sarif:", werr)
			return 2
		}
	}
	code := 0
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mwslint: baseline:", err)
			return 2
		}
		var b baselineFile
		if err := json.Unmarshal(raw, &b); err != nil {
			fmt.Fprintf(os.Stderr, "mwslint: baseline %s: %v\n", *baseline, err)
			return 2
		}
		if n := len(rep.Suppressed); n > b.Suppressions {
			fmt.Fprintf(os.Stderr, "mwslint: %d suppression(s) exceed the baseline budget of %d (%s); new ignores need a baseline bump in the same change\n",
				n, b.Suppressions, *baseline)
			code = 1
		}
		if b.Analyzers != nil {
			perAnalyzer := make(map[string]int)
			for _, s := range rep.Suppressed {
				perAnalyzer[s.Analyzer]++
			}
			names := make([]string, 0, len(perAnalyzer))
			for name := range perAnalyzer {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				if n := perAnalyzer[name]; n > b.Analyzers[name] {
					fmt.Fprintf(os.Stderr, "mwslint: %s: %d suppression(s) exceed its baseline pin of %d (%s); the debt an analyzer tracks can only shrink without a reviewed baseline bump\n",
						name, n, b.Analyzers[name], *baseline)
					code = 1
				}
			}
		}
	}
	if len(rep.Diags) > 0 {
		fmt.Fprintf(os.Stderr, "mwslint: %d finding(s)\n", len(rep.Diags))
		code = 1
	}
	return code
}
