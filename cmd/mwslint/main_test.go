package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestSeededCrossPackageViolation seeds a module where plaintext
// decrypted in one package is persisted by another two calls away, and
// asserts the binary exits 1 in both output modes, with -json emitting
// one parseable object per line.
func TestSeededCrossPackageViolation(t *testing.T) {
	tmp := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(tmp, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratchtaint\n\ngo 1.24\n")
	write("symenc/symenc.go", `// Package symenc mimics the symmetric layer's shape.
package symenc

// Open decrypts blob.
func Open(key, ciphertext, aad []byte) ([]byte, error) { return ciphertext, nil }
`)
	write("store/store.go", `// Package store mimics the storage layer's shape.
package store

// Put persists one record.
func Put(rec []byte) error { _ = rec; return nil }
`)
	write("mws/mws.go", `// Package mws seeds the cross-package violation: Open output reaches
// a store write through two intermediate calls.
package mws

import (
	"scratchtaint/store"
	"scratchtaint/symenc"
)

func decrypt(key, blob []byte) []byte {
	pt, _ := symenc.Open(key, blob, nil)
	return pt
}

// Handle is deliberately broken: it persists what decrypt returned.
func Handle(key, blob []byte) error {
	return persist(decrypt(key, blob))
}

func persist(rec []byte) error {
	return store.Put(rec)
}
`)

	runLint := func(args ...string) (string, int) {
		t.Helper()
		cmd := exec.Command("go", append([]string{"run", "./cmd/mwslint", "-C", tmp}, args...)...)
		cmd.Dir = "../.."
		out, err := cmd.CombinedOutput()
		if err == nil {
			return string(out), 0
		}
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running mwslint: %v\n%s", err, out)
		}
		return string(out), ee.ExitCode()
	}

	out, code := runLint("./...")
	if code != 1 {
		t.Fatalf("mwslint exit code = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "plainflow") {
		t.Fatalf("mwslint output does not name plainflow:\n%s", out)
	}

	out, code = runLint("-json", "./...")
	if code != 1 {
		t.Fatalf("mwslint -json exit code = %d, want 1; output:\n%s", code, out)
	}
	sawPlainflow := false
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "{") {
			continue // the trailing "mwslint: N finding(s)" stderr line
		}
		var d struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("non-JSON diagnostic line %q: %v", line, err)
		}
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Fatalf("incomplete JSON diagnostic: %q", line)
		}
		if d.Analyzer == "plainflow" {
			sawPlainflow = true
		}
	}
	if !sawPlainflow {
		t.Fatalf("-json output has no plainflow diagnostic:\n%s", out)
	}
}

// TestSeededVartimeViolation seeds a module where RandomScalar output
// crosses a package boundary before hitting the variable-time
// multiplier, and asserts the binary exits 1 naming vartime.
func TestSeededVartimeViolation(t *testing.T) {
	tmp := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(tmp, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratchvartime\n\ngo 1.24\n")
	write("ec/ec.go", `// Package ec mimics the curve layer's shape.
package ec

import "math/big"

// Point is a curve point.
type Point struct{ X, Y *big.Int }

// Curve is the group.
type Curve struct{}

// ScalarMult is the variable-time multiplier.
func (c *Curve) ScalarMult(p Point, k *big.Int) Point { _ = k; return p }

// ScalarMultSecret is the constant-schedule multiplier.
func (c *Curve) ScalarMultSecret(p Point, k *big.Int) Point { _ = k; return p }
`)
	write("pairing/pairing.go", `// Package pairing mimics the pairing layer's shape.
package pairing

import (
	"io"
	"math/big"

	"scratchvartime/ec"
)

// System carries the group parameters.
type System struct{ Curve *ec.Curve }

// RandomScalar draws a uniform scalar: the vartime source.
func (s *System) RandomScalar(r io.Reader) (*big.Int, error) {
	_ = r
	return big.NewInt(7), nil
}
`)
	write("kem/kem.go", `// Package kem seeds the cross-package violation: the encapsulation
// randomness reaches ScalarMult through a helper in another package.
package kem

import (
	"crypto/rand"

	"scratchvartime/ec"
	"scratchvartime/pairing"
)

// Encapsulate is deliberately broken: r takes the variable-time path.
func Encapsulate(sys *pairing.System, base ec.Point) (ec.Point, error) {
	r, err := sys.RandomScalar(rand.Reader)
	if err != nil {
		return ec.Point{}, err
	}
	return sys.Curve.ScalarMult(base, r), nil
}
`)

	cmd := exec.Command("go", "run", "./cmd/mwslint", "-C", tmp, "./...")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("mwslint should exit 1: err=%v\n%s", err, out)
	}
	if ee.ExitCode() != 1 {
		t.Fatalf("mwslint exit code = %d, want 1; output:\n%s", ee.ExitCode(), out)
	}
	if !strings.Contains(string(out), "vartime") {
		t.Fatalf("mwslint output does not name vartime:\n%s", out)
	}
	if !strings.Contains(string(out), "RandomScalar") {
		t.Fatalf("mwslint output does not describe the RandomScalar taint:\n%s", out)
	}
}

// TestListNamesEveryAnalyzer keeps -list in sync with the suite.
func TestListNamesEveryAnalyzer(t *testing.T) {
	cmd := exec.Command("go", "run", "./cmd/mwslint", "-list")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("mwslint -list: %v\n%s", err, out)
	}
	for _, name := range []string{
		"cryptocompare", "randsource", "secretlog", "ctxflow", "wireops",
		"plainflow", "noncereuse", "keyzero", "vartime",
	} {
		if !strings.Contains(string(out), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
}
