package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestSeededCrossPackageViolation seeds a module where plaintext
// decrypted in one package is persisted by another two calls away, and
// asserts the binary exits 1 in both output modes, with -json emitting
// one parseable object per line.
func TestSeededCrossPackageViolation(t *testing.T) {
	tmp := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(tmp, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratchtaint\n\ngo 1.24\n")
	write("symenc/symenc.go", `// Package symenc mimics the symmetric layer's shape.
package symenc

// Open decrypts blob.
func Open(key, ciphertext, aad []byte) ([]byte, error) { return ciphertext, nil }
`)
	write("store/store.go", `// Package store mimics the storage layer's shape.
package store

// Put persists one record.
func Put(rec []byte) error { _ = rec; return nil }
`)
	write("mws/mws.go", `// Package mws seeds the cross-package violation: Open output reaches
// a store write through two intermediate calls.
package mws

import (
	"scratchtaint/store"
	"scratchtaint/symenc"
)

func decrypt(key, blob []byte) []byte {
	pt, _ := symenc.Open(key, blob, nil)
	return pt
}

// Handle is deliberately broken: it persists what decrypt returned.
func Handle(key, blob []byte) error {
	return persist(decrypt(key, blob))
}

func persist(rec []byte) error {
	return store.Put(rec)
}
`)

	runLint := func(args ...string) (string, int) {
		t.Helper()
		cmd := exec.Command("go", append([]string{"run", "./cmd/mwslint", "-C", tmp}, args...)...)
		cmd.Dir = "../.."
		out, err := cmd.CombinedOutput()
		if err == nil {
			return string(out), 0
		}
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running mwslint: %v\n%s", err, out)
		}
		return string(out), ee.ExitCode()
	}

	out, code := runLint("./...")
	if code != 1 {
		t.Fatalf("mwslint exit code = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "plainflow") {
		t.Fatalf("mwslint output does not name plainflow:\n%s", out)
	}

	out, code = runLint("-json", "./...")
	if code != 1 {
		t.Fatalf("mwslint -json exit code = %d, want 1; output:\n%s", code, out)
	}
	sawPlainflow := false
	sawSummary := false
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "{") {
			continue // the trailing "mwslint: N finding(s)" stderr line
		}
		var d struct {
			Summary  bool   `json:"summary"`
			Findings int    `json:"findings"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("non-JSON diagnostic line %q: %v", line, err)
		}
		if d.Summary {
			if sawSummary {
				t.Fatalf("more than one summary line:\n%s", out)
			}
			sawSummary = true
			if d.Findings == 0 {
				t.Fatalf("summary reports zero findings: %q", line)
			}
			continue
		}
		if sawSummary {
			t.Fatalf("diagnostic after the summary line: %q", line)
		}
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Fatalf("incomplete JSON diagnostic: %q", line)
		}
		if d.Analyzer == "plainflow" {
			sawPlainflow = true
		}
	}
	if !sawPlainflow {
		t.Fatalf("-json output has no plainflow diagnostic:\n%s", out)
	}
	if !sawSummary {
		t.Fatalf("-json output has no trailing summary object:\n%s", out)
	}
}

// TestSeededVartimeViolation seeds a module where RandomScalar output
// crosses a package boundary before hitting the variable-time
// multiplier, and asserts the binary exits 1 naming vartime.
func TestSeededVartimeViolation(t *testing.T) {
	tmp := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(tmp, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratchvartime\n\ngo 1.24\n")
	write("ec/ec.go", `// Package ec mimics the curve layer's shape.
package ec

import "math/big"

// Point is a curve point.
type Point struct{ X, Y *big.Int }

// Curve is the group.
type Curve struct{}

// ScalarMult is the variable-time multiplier.
func (c *Curve) ScalarMult(p Point, k *big.Int) Point { _ = k; return p }

// ScalarMultSecret is the constant-schedule multiplier.
func (c *Curve) ScalarMultSecret(p Point, k *big.Int) Point { _ = k; return p }
`)
	write("pairing/pairing.go", `// Package pairing mimics the pairing layer's shape.
package pairing

import (
	"io"
	"math/big"

	"scratchvartime/ec"
)

// System carries the group parameters.
type System struct{ Curve *ec.Curve }

// RandomScalar draws a uniform scalar: the vartime source.
func (s *System) RandomScalar(r io.Reader) (*big.Int, error) {
	_ = r
	return big.NewInt(7), nil
}
`)
	write("kem/kem.go", `// Package kem seeds the cross-package violation: the encapsulation
// randomness reaches ScalarMult through a helper in another package.
package kem

import (
	"crypto/rand"

	"scratchvartime/ec"
	"scratchvartime/pairing"
)

// Encapsulate is deliberately broken: r takes the variable-time path.
func Encapsulate(sys *pairing.System, base ec.Point) (ec.Point, error) {
	r, err := sys.RandomScalar(rand.Reader)
	if err != nil {
		return ec.Point{}, err
	}
	return sys.Curve.ScalarMult(base, r), nil
}
`)

	cmd := exec.Command("go", "run", "./cmd/mwslint", "-C", tmp, "./...")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("mwslint should exit 1: err=%v\n%s", err, out)
	}
	if ee.ExitCode() != 1 {
		t.Fatalf("mwslint exit code = %d, want 1; output:\n%s", ee.ExitCode(), out)
	}
	if !strings.Contains(string(out), "vartime") {
		t.Fatalf("mwslint output does not name vartime:\n%s", out)
	}
	if !strings.Contains(string(out), "RandomScalar") {
		t.Fatalf("mwslint output does not describe the RandomScalar taint:\n%s", out)
	}
}

// TestSeededCrossPackageDeadlock seeds a module where one package takes
// A then B through a helper and a sibling takes B then A directly, and
// asserts the binary exits 1 naming lockorder: the acquisition graph
// must stitch the cycle together across the package boundary.
func TestSeededCrossPackageDeadlock(t *testing.T) {
	tmp := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(tmp, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratchdeadlock\n\ngo 1.24\n")
	write("locks/locks.go", `// Package locks owns the shared pair.
package locks

import "sync"

// Pair carries two mutexes with a (violated) A-before-B discipline.
type Pair struct {
	A sync.Mutex
	B sync.Mutex
}

// LockB acquires B for a caller; the caller may already hold A.
func LockB(p *Pair) { p.B.Lock() }

// UnlockB releases B.
func UnlockB(p *Pair) { p.B.Unlock() }
`)
	write("alpha/alpha.go", `// Package alpha takes A then B (through the helper).
package alpha

import "scratchdeadlock/locks"

// AB nests B under A.
func AB(p *locks.Pair) {
	p.A.Lock()
	defer p.A.Unlock()
	locks.LockB(p)
	locks.UnlockB(p)
}
`)
	write("beta/beta.go", `// Package beta takes B then A: the opposite order.
package beta

import "scratchdeadlock/locks"

// BA nests A under B.
func BA(p *locks.Pair) {
	p.B.Lock()
	defer p.B.Unlock()
	p.A.Lock()
	p.A.Unlock()
}
`)

	cmd := exec.Command("go", "run", "./cmd/mwslint", "-C", tmp, "./...")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("mwslint should exit 1: err=%v\n%s", err, out)
	}
	if ee.ExitCode() != 1 {
		t.Fatalf("mwslint exit code = %d, want 1; output:\n%s", ee.ExitCode(), out)
	}
	if !strings.Contains(string(out), "lockorder") {
		t.Fatalf("mwslint output does not name lockorder:\n%s", out)
	}
	if !strings.Contains(string(out), "cycle") {
		t.Fatalf("mwslint output does not describe the ordering cycle:\n%s", out)
	}
}

// TestSuppressedArrayAndBaseline seeds a module whose only finding is
// silenced by a justified ignore, and asserts (a) the -json summary
// surfaces it in the suppressed array with its reason, (b) a baseline
// of 0 fails the run, and (c) a baseline of 1 passes it.
func TestSuppressedArrayAndBaseline(t *testing.T) {
	tmp := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(tmp, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratchignore\n\ngo 1.24\n")
	write("storage/storage.go", `// Package storage couples an fsync to its lock, on purpose.
package storage

import (
	"os"
	"sync"
)

// S is a mutex-guarded file.
type S struct {
	mu sync.Mutex
	f  *os.File
}

// Flush fsyncs under the lock; the ignore below sanctions it.
func (s *S) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//mwslint:ignore lockheld scratch: this flush couples fsync to its lock by design
	return s.f.Sync()
}
`)
	write("budget0.json", `{"suppressions": 0}`)
	write("budget1.json", `{"suppressions": 1}`)

	runLint := func(args ...string) (string, int) {
		t.Helper()
		cmd := exec.Command("go", append([]string{"run", "./cmd/mwslint", "-C", tmp}, args...)...)
		cmd.Dir = "../.."
		out, err := cmd.CombinedOutput()
		if err == nil {
			return string(out), 0
		}
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running mwslint: %v\n%s", err, out)
		}
		return string(out), ee.ExitCode()
	}

	out, code := runLint("-json", "./...")
	if code != 0 {
		t.Fatalf("suppressed tree should exit 0, got %d:\n%s", code, out)
	}
	var sum struct {
		Summary    bool `json:"summary"`
		Findings   int  `json:"findings"`
		Suppressed []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Reason   string `json:"reason"`
		} `json:"suppressed"`
		Timings []struct {
			Analyzer string  `json:"analyzer"`
			Millis   float64 `json:"ms"`
		} `json:"timings"`
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil || !sum.Summary {
		t.Fatalf("last line is not the summary object (%v): %q", err, lines[len(lines)-1])
	}
	if sum.Findings != 0 {
		t.Errorf("summary findings = %d, want 0", sum.Findings)
	}
	if len(sum.Suppressed) != 1 {
		t.Fatalf("suppressed array = %+v, want exactly 1 entry", sum.Suppressed)
	}
	s := sum.Suppressed[0]
	if s.Analyzer != "lockheld" || s.Line == 0 || !strings.HasSuffix(s.File, "storage.go") {
		t.Errorf("suppressed entry lacks analyzer/position: %+v", s)
	}
	if !strings.Contains(s.Reason, "couples fsync to its lock") {
		t.Errorf("suppressed entry lacks the directive reason: %+v", s)
	}
	if len(sum.Timings) == 0 {
		t.Errorf("summary carries no per-analyzer timings:\n%s", out)
	}

	out, code = runLint("-baseline", filepath.Join(tmp, "budget0.json"), "./...")
	if code != 1 {
		t.Fatalf("baseline 0 should fail with exit 1, got %d:\n%s", code, out)
	}
	if !strings.Contains(out, "exceed the baseline") {
		t.Fatalf("baseline failure not explained:\n%s", out)
	}

	out, code = runLint("-baseline", filepath.Join(tmp, "budget1.json"), "./...")
	if code != 0 {
		t.Fatalf("baseline 1 should pass, got %d:\n%s", code, out)
	}
}

// seedCTModule writes a scratch module that exercises the full report
// surface: a cross-package ctflow violation (a gateway branches on a
// private-key byte obtained through bfibe's call-graph summary), one
// lockheld finding silenced by a justified ignore, and one declassify
// directive. The shared fixture keeps the selection, schema, SARIF, and
// per-analyzer baseline tests honest about the same tree.
func seedCTModule(t *testing.T) string {
	t.Helper()
	tmp := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(tmp, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratchct\n\ngo 1.24\n")
	write("bfibe/bfibe.go", `// Package bfibe mimics the IBE layer's shape.
package bfibe

// PrivateKey mirrors the extracted key; D is the secret scalar bytes.
type PrivateKey struct {
	ID []byte
	D  []byte
}

// KeyByte exposes one byte of the secret scalar.
func KeyByte(sk *PrivateKey, i int) byte { return sk.D[i] }

// Parity is sanctioned: the directive asserts the bit public.
func Parity(key []byte) int {
	//mwslint:declassify scratch: the low bit is blinded upstream
	if key[0]&1 == 1 {
		return 1
	}
	return 0
}
`)
	write("gateway/gateway.go", `// Package gateway consumes the key across the package boundary.
package gateway

import "scratchct/bfibe"

// Route is deliberately broken: it branches on a private-key byte.
func Route(sk *bfibe.PrivateKey) int {
	if bfibe.KeyByte(sk, 0) == 0 {
		return 1
	}
	return 0
}
`)
	write("storage/storage.go", `// Package storage couples an fsync to its lock, on purpose.
package storage

import (
	"os"
	"sync"
)

// S is a mutex-guarded file.
type S struct {
	mu sync.Mutex
	f  *os.File
}

// Flush fsyncs under the lock; the ignore below sanctions it.
func (s *S) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//mwslint:ignore lockheld scratch: this flush couples fsync to its lock by design
	return s.f.Sync()
}
`)
	return tmp
}

// builtLint builds the binary once per test run: unlike `go run`, which
// flattens every nonzero child exit to 1, executing the binary directly
// preserves the 1-findings / 2-usage exit-code contract under test.
var builtLint struct {
	once sync.Once
	path string
	err  error
}

// runLintIn runs the built binary against a seeded module and returns
// its combined output and exit code.
func runLintIn(t *testing.T, dir string, args ...string) (string, int) {
	t.Helper()
	builtLint.once.Do(func() {
		tmp, err := os.MkdirTemp("", "mwslint-test-*")
		if err != nil {
			builtLint.err = err
			return
		}
		builtLint.path = filepath.Join(tmp, "mwslint")
		cmd := exec.Command("go", "build", "-o", builtLint.path, ".")
		if out, err := cmd.CombinedOutput(); err != nil {
			builtLint.err = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if builtLint.err != nil {
		t.Fatalf("building mwslint: %v", builtLint.err)
	}
	cmd := exec.Command(builtLint.path, append([]string{"-C", dir}, args...)...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running mwslint: %v\n%s", err, out)
	}
	return string(out), ee.ExitCode()
}

// TestSeededCTFlowCrossPackage is the acceptance check for the
// constant-time verifier: a secret-dependent branch whose taint crosses
// a package boundary through a summary must fail the build.
func TestSeededCTFlowCrossPackage(t *testing.T) {
	tmp := seedCTModule(t)
	out, code := runLintIn(t, tmp, "./...")
	if code != 1 {
		t.Fatalf("mwslint exit code = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "ctflow") {
		t.Fatalf("mwslint output does not name ctflow:\n%s", out)
	}
	if !strings.Contains(out, "branch condition depends on an extracted identity private key") {
		t.Fatalf("mwslint output does not describe the cross-package secret branch:\n%s", out)
	}
	if !strings.Contains(out, "gateway.go") {
		t.Fatalf("finding not attributed to the consuming package:\n%s", out)
	}
}

// TestAnalyzerSelection pins the -only/-skip contract: selection changes
// which findings surface, a typo is a hard error (exit 2, never a
// silently wrong set), and the two flags are mutually exclusive.
func TestAnalyzerSelection(t *testing.T) {
	tmp := seedCTModule(t)

	out, code := runLintIn(t, tmp, "-only=ctflow", "./...")
	if code != 1 || !strings.Contains(out, "ctflow") {
		t.Fatalf("-only=ctflow should surface the ctflow finding (exit 1), got %d:\n%s", code, out)
	}
	if strings.Contains(out, "unknown analyzer") {
		t.Fatalf("-only=ctflow invalidated a checked-in ignore for an unselected analyzer:\n%s", out)
	}

	out, code = runLintIn(t, tmp, "-skip=ctflow", "./...")
	if code != 0 {
		t.Fatalf("-skip=ctflow should leave a clean tree (exit 0), got %d:\n%s", code, out)
	}

	for _, args := range [][]string{
		{"-only=nosuch", "./..."},
		{"-skip=nosuch", "./..."},
		{"-only=ctflow", "-skip=lockheld", "./..."},
	} {
		out, code = runLintIn(t, tmp, args...)
		if code != 2 {
			t.Errorf("%v should exit 2, got %d:\n%s", args, code, out)
		}
	}
	out, _ = runLintIn(t, tmp, "-only=nosuch", "./...")
	if !strings.Contains(out, "unknown analyzer") {
		t.Errorf("-only=nosuch error does not say unknown analyzer:\n%s", out)
	}
}

// TestJSONGoldenSchema locks the -json wire shape: the exact key sets of
// the diagnostic, suppression, declassification, and summary objects.
// CI tooling greps these fields; adding or renaming one is a reviewed
// interface change, and this test is where the review starts.
func TestJSONGoldenSchema(t *testing.T) {
	tmp := seedCTModule(t)
	out, code := runLintIn(t, tmp, "-json", "./...")
	if code != 1 {
		t.Fatalf("seeded tree should exit 1, got %d:\n%s", code, out)
	}

	keysOf := func(raw json.RawMessage) string {
		var m map[string]json.RawMessage
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("non-object JSON %q: %v", raw, err)
		}
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return strings.Join(keys, ",")
	}

	const (
		wantDiag    = "analyzer,col,file,line,message"
		wantSummary = "declassified,findings,summary,suppressed,timings"
		wantSupp    = "analyzer,col,file,line,reason"
		wantDecl    = "col,file,line,reason"
		wantTiming  = "analyzer,ms"
	)

	var sawDiag, sawSummary bool
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "{") {
			continue // the trailing "mwslint: N finding(s)" stderr line
		}
		var probe struct {
			Summary      bool              `json:"summary"`
			Suppressed   []json.RawMessage `json:"suppressed"`
			Declassified []json.RawMessage `json:"declassified"`
			Timings      []json.RawMessage `json:"timings"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("non-JSON line %q: %v", line, err)
		}
		if !probe.Summary {
			sawDiag = true
			if got := keysOf(json.RawMessage(line)); got != wantDiag {
				t.Errorf("diagnostic keys = %q, want %q", got, wantDiag)
			}
			continue
		}
		sawSummary = true
		if got := keysOf(json.RawMessage(line)); got != wantSummary {
			t.Errorf("summary keys = %q, want %q", got, wantSummary)
		}
		if len(probe.Suppressed) != 1 || len(probe.Declassified) != 1 {
			t.Fatalf("want 1 suppression and 1 declassification, got %d/%d:\n%s",
				len(probe.Suppressed), len(probe.Declassified), out)
		}
		if got := keysOf(probe.Suppressed[0]); got != wantSupp {
			t.Errorf("suppression keys = %q, want %q", got, wantSupp)
		}
		if got := keysOf(probe.Declassified[0]); got != wantDecl {
			t.Errorf("declassification keys = %q, want %q", got, wantDecl)
		}
		if len(probe.Timings) == 0 {
			t.Error("summary carries no timings")
		} else if got := keysOf(probe.Timings[0]); got != wantTiming {
			t.Errorf("timing keys = %q, want %q", got, wantTiming)
		}
	}
	if !sawDiag || !sawSummary {
		t.Fatalf("want at least one diagnostic and one summary object:\n%s", out)
	}
}

// TestSARIFOutput pins the -sarif log far enough for code-scanning
// upload: 2.1.0 versioning, rule metadata for the suite plus the
// declassify pseudo-rule, error/warning/note result levels, inSource
// suppression records, and artifact URIs relative to the lint root.
func TestSARIFOutput(t *testing.T) {
	tmp := seedCTModule(t)
	sarifPath := filepath.Join(tmp, "out.sarif")
	out, code := runLintIn(t, tmp, "-sarif", sarifPath, "./...")
	if code != 1 {
		t.Fatalf("seeded tree should exit 1, got %d:\n%s", code, out)
	}
	raw, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatalf("reading SARIF log: %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				Suppressions []struct {
					Kind          string `json:"kind"`
					Justification string `json:"justification"`
				} `json:"suppressions"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(raw, &log); err != nil {
		t.Fatalf("SARIF log is not JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version/runs = %q/%d, want 2.1.0/1", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "mwslint" {
		t.Errorf("driver name = %q, want mwslint", run.Tool.Driver.Name)
	}
	ruleIDs := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, want := range []string{"ctflow", "lockheld", "mwslint", "mwslint/declassify"} {
		if !ruleIDs[want] {
			t.Errorf("rules missing %q; have %v", want, ruleIDs)
		}
	}
	var sawError, sawSuppressed, sawNote bool
	for _, r := range run.Results {
		if len(r.Locations) != 1 {
			t.Fatalf("result %q has %d locations, want 1", r.RuleID, len(r.Locations))
		}
		uri := r.Locations[0].PhysicalLocation.ArtifactLocation.URI
		if strings.HasPrefix(uri, "/") || strings.Contains(uri, "..") {
			t.Errorf("artifact URI %q is not relative to the lint root", uri)
		}
		if r.Locations[0].PhysicalLocation.Region.StartLine == 0 {
			t.Errorf("result %q has no start line", r.RuleID)
		}
		switch {
		case r.RuleID == "ctflow" && r.Level == "error":
			sawError = true
			if uri != "gateway/gateway.go" {
				t.Errorf("ctflow finding URI = %q, want gateway/gateway.go", uri)
			}
		case r.RuleID == "lockheld" && r.Level == "warning":
			sawSuppressed = true
			if len(r.Suppressions) != 1 || r.Suppressions[0].Kind != "inSource" ||
				!strings.Contains(r.Suppressions[0].Justification, "couples fsync to its lock") {
				t.Errorf("suppressed result lacks its inSource record: %+v", r.Suppressions)
			}
		case r.RuleID == "mwslint/declassify" && r.Level == "note":
			sawNote = true
		}
	}
	if !sawError || !sawSuppressed || !sawNote {
		t.Fatalf("missing result classes (error=%v suppressed=%v note=%v):\n%s",
			sawError, sawSuppressed, sawNote, raw)
	}
}

// TestPerAnalyzerBaseline pins the per-analyzer gate: with the analyzers
// map present, an analyzer absent from it has budget zero, so the tree's
// one lockheld suppression fails an empty map and passes a pin of 1.
// ctflow is skipped so the gate — not the seeded finding — decides.
func TestPerAnalyzerBaseline(t *testing.T) {
	tmp := seedCTModule(t)
	write := func(rel, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(tmp, rel), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("pin0.json", `{"suppressions": 9, "analyzers": {}}`)
	write("pin1.json", `{"suppressions": 9, "analyzers": {"lockheld": 1}}`)

	out, code := runLintIn(t, tmp, "-skip=ctflow", "-baseline", filepath.Join(tmp, "pin0.json"), "./...")
	if code != 1 {
		t.Fatalf("zero lockheld pin should fail with exit 1, got %d:\n%s", code, out)
	}
	if !strings.Contains(out, "lockheld") || !strings.Contains(out, "baseline pin") {
		t.Fatalf("per-analyzer failure not attributed to lockheld's pin:\n%s", out)
	}

	out, code = runLintIn(t, tmp, "-skip=ctflow", "-baseline", filepath.Join(tmp, "pin1.json"), "./...")
	if code != 0 {
		t.Fatalf("lockheld pin of 1 should pass, got %d:\n%s", code, out)
	}
}

// TestListNamesEveryAnalyzer keeps -list in sync with the suite.
func TestListNamesEveryAnalyzer(t *testing.T) {
	cmd := exec.Command("go", "run", "./cmd/mwslint", "-list")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("mwslint -list: %v\n%s", err, out)
	}
	for _, name := range []string{
		"cryptocompare", "randsource", "secretlog", "ctxflow", "wireops",
		"plainflow", "noncereuse", "keyzero", "vartime", "ctflow",
		"lockorder", "lockheld", "atomicmix", "goleak",
	} {
		if !strings.Contains(string(out), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
}
