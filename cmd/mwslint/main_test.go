package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestSeededCrossPackageViolation seeds a module where plaintext
// decrypted in one package is persisted by another two calls away, and
// asserts the binary exits 1 in both output modes, with -json emitting
// one parseable object per line.
func TestSeededCrossPackageViolation(t *testing.T) {
	tmp := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(tmp, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratchtaint\n\ngo 1.24\n")
	write("symenc/symenc.go", `// Package symenc mimics the symmetric layer's shape.
package symenc

// Open decrypts blob.
func Open(key, ciphertext, aad []byte) ([]byte, error) { return ciphertext, nil }
`)
	write("store/store.go", `// Package store mimics the storage layer's shape.
package store

// Put persists one record.
func Put(rec []byte) error { _ = rec; return nil }
`)
	write("mws/mws.go", `// Package mws seeds the cross-package violation: Open output reaches
// a store write through two intermediate calls.
package mws

import (
	"scratchtaint/store"
	"scratchtaint/symenc"
)

func decrypt(key, blob []byte) []byte {
	pt, _ := symenc.Open(key, blob, nil)
	return pt
}

// Handle is deliberately broken: it persists what decrypt returned.
func Handle(key, blob []byte) error {
	return persist(decrypt(key, blob))
}

func persist(rec []byte) error {
	return store.Put(rec)
}
`)

	runLint := func(args ...string) (string, int) {
		t.Helper()
		cmd := exec.Command("go", append([]string{"run", "./cmd/mwslint", "-C", tmp}, args...)...)
		cmd.Dir = "../.."
		out, err := cmd.CombinedOutput()
		if err == nil {
			return string(out), 0
		}
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running mwslint: %v\n%s", err, out)
		}
		return string(out), ee.ExitCode()
	}

	out, code := runLint("./...")
	if code != 1 {
		t.Fatalf("mwslint exit code = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "plainflow") {
		t.Fatalf("mwslint output does not name plainflow:\n%s", out)
	}

	out, code = runLint("-json", "./...")
	if code != 1 {
		t.Fatalf("mwslint -json exit code = %d, want 1; output:\n%s", code, out)
	}
	sawPlainflow := false
	sawSummary := false
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "{") {
			continue // the trailing "mwslint: N finding(s)" stderr line
		}
		var d struct {
			Summary  bool   `json:"summary"`
			Findings int    `json:"findings"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("non-JSON diagnostic line %q: %v", line, err)
		}
		if d.Summary {
			if sawSummary {
				t.Fatalf("more than one summary line:\n%s", out)
			}
			sawSummary = true
			if d.Findings == 0 {
				t.Fatalf("summary reports zero findings: %q", line)
			}
			continue
		}
		if sawSummary {
			t.Fatalf("diagnostic after the summary line: %q", line)
		}
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Fatalf("incomplete JSON diagnostic: %q", line)
		}
		if d.Analyzer == "plainflow" {
			sawPlainflow = true
		}
	}
	if !sawPlainflow {
		t.Fatalf("-json output has no plainflow diagnostic:\n%s", out)
	}
	if !sawSummary {
		t.Fatalf("-json output has no trailing summary object:\n%s", out)
	}
}

// TestSeededVartimeViolation seeds a module where RandomScalar output
// crosses a package boundary before hitting the variable-time
// multiplier, and asserts the binary exits 1 naming vartime.
func TestSeededVartimeViolation(t *testing.T) {
	tmp := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(tmp, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratchvartime\n\ngo 1.24\n")
	write("ec/ec.go", `// Package ec mimics the curve layer's shape.
package ec

import "math/big"

// Point is a curve point.
type Point struct{ X, Y *big.Int }

// Curve is the group.
type Curve struct{}

// ScalarMult is the variable-time multiplier.
func (c *Curve) ScalarMult(p Point, k *big.Int) Point { _ = k; return p }

// ScalarMultSecret is the constant-schedule multiplier.
func (c *Curve) ScalarMultSecret(p Point, k *big.Int) Point { _ = k; return p }
`)
	write("pairing/pairing.go", `// Package pairing mimics the pairing layer's shape.
package pairing

import (
	"io"
	"math/big"

	"scratchvartime/ec"
)

// System carries the group parameters.
type System struct{ Curve *ec.Curve }

// RandomScalar draws a uniform scalar: the vartime source.
func (s *System) RandomScalar(r io.Reader) (*big.Int, error) {
	_ = r
	return big.NewInt(7), nil
}
`)
	write("kem/kem.go", `// Package kem seeds the cross-package violation: the encapsulation
// randomness reaches ScalarMult through a helper in another package.
package kem

import (
	"crypto/rand"

	"scratchvartime/ec"
	"scratchvartime/pairing"
)

// Encapsulate is deliberately broken: r takes the variable-time path.
func Encapsulate(sys *pairing.System, base ec.Point) (ec.Point, error) {
	r, err := sys.RandomScalar(rand.Reader)
	if err != nil {
		return ec.Point{}, err
	}
	return sys.Curve.ScalarMult(base, r), nil
}
`)

	cmd := exec.Command("go", "run", "./cmd/mwslint", "-C", tmp, "./...")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("mwslint should exit 1: err=%v\n%s", err, out)
	}
	if ee.ExitCode() != 1 {
		t.Fatalf("mwslint exit code = %d, want 1; output:\n%s", ee.ExitCode(), out)
	}
	if !strings.Contains(string(out), "vartime") {
		t.Fatalf("mwslint output does not name vartime:\n%s", out)
	}
	if !strings.Contains(string(out), "RandomScalar") {
		t.Fatalf("mwslint output does not describe the RandomScalar taint:\n%s", out)
	}
}

// TestSeededCrossPackageDeadlock seeds a module where one package takes
// A then B through a helper and a sibling takes B then A directly, and
// asserts the binary exits 1 naming lockorder: the acquisition graph
// must stitch the cycle together across the package boundary.
func TestSeededCrossPackageDeadlock(t *testing.T) {
	tmp := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(tmp, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratchdeadlock\n\ngo 1.24\n")
	write("locks/locks.go", `// Package locks owns the shared pair.
package locks

import "sync"

// Pair carries two mutexes with a (violated) A-before-B discipline.
type Pair struct {
	A sync.Mutex
	B sync.Mutex
}

// LockB acquires B for a caller; the caller may already hold A.
func LockB(p *Pair) { p.B.Lock() }

// UnlockB releases B.
func UnlockB(p *Pair) { p.B.Unlock() }
`)
	write("alpha/alpha.go", `// Package alpha takes A then B (through the helper).
package alpha

import "scratchdeadlock/locks"

// AB nests B under A.
func AB(p *locks.Pair) {
	p.A.Lock()
	defer p.A.Unlock()
	locks.LockB(p)
	locks.UnlockB(p)
}
`)
	write("beta/beta.go", `// Package beta takes B then A: the opposite order.
package beta

import "scratchdeadlock/locks"

// BA nests A under B.
func BA(p *locks.Pair) {
	p.B.Lock()
	defer p.B.Unlock()
	p.A.Lock()
	p.A.Unlock()
}
`)

	cmd := exec.Command("go", "run", "./cmd/mwslint", "-C", tmp, "./...")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("mwslint should exit 1: err=%v\n%s", err, out)
	}
	if ee.ExitCode() != 1 {
		t.Fatalf("mwslint exit code = %d, want 1; output:\n%s", ee.ExitCode(), out)
	}
	if !strings.Contains(string(out), "lockorder") {
		t.Fatalf("mwslint output does not name lockorder:\n%s", out)
	}
	if !strings.Contains(string(out), "cycle") {
		t.Fatalf("mwslint output does not describe the ordering cycle:\n%s", out)
	}
}

// TestSuppressedArrayAndBaseline seeds a module whose only finding is
// silenced by a justified ignore, and asserts (a) the -json summary
// surfaces it in the suppressed array with its reason, (b) a baseline
// of 0 fails the run, and (c) a baseline of 1 passes it.
func TestSuppressedArrayAndBaseline(t *testing.T) {
	tmp := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(tmp, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratchignore\n\ngo 1.24\n")
	write("storage/storage.go", `// Package storage couples an fsync to its lock, on purpose.
package storage

import (
	"os"
	"sync"
)

// S is a mutex-guarded file.
type S struct {
	mu sync.Mutex
	f  *os.File
}

// Flush fsyncs under the lock; the ignore below sanctions it.
func (s *S) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//mwslint:ignore lockheld scratch: this flush couples fsync to its lock by design
	return s.f.Sync()
}
`)
	write("budget0.json", `{"suppressions": 0}`)
	write("budget1.json", `{"suppressions": 1}`)

	runLint := func(args ...string) (string, int) {
		t.Helper()
		cmd := exec.Command("go", append([]string{"run", "./cmd/mwslint", "-C", tmp}, args...)...)
		cmd.Dir = "../.."
		out, err := cmd.CombinedOutput()
		if err == nil {
			return string(out), 0
		}
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running mwslint: %v\n%s", err, out)
		}
		return string(out), ee.ExitCode()
	}

	out, code := runLint("-json", "./...")
	if code != 0 {
		t.Fatalf("suppressed tree should exit 0, got %d:\n%s", code, out)
	}
	var sum struct {
		Summary    bool `json:"summary"`
		Findings   int  `json:"findings"`
		Suppressed []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Reason   string `json:"reason"`
		} `json:"suppressed"`
		Timings []struct {
			Analyzer string  `json:"analyzer"`
			Millis   float64 `json:"ms"`
		} `json:"timings"`
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil || !sum.Summary {
		t.Fatalf("last line is not the summary object (%v): %q", err, lines[len(lines)-1])
	}
	if sum.Findings != 0 {
		t.Errorf("summary findings = %d, want 0", sum.Findings)
	}
	if len(sum.Suppressed) != 1 {
		t.Fatalf("suppressed array = %+v, want exactly 1 entry", sum.Suppressed)
	}
	s := sum.Suppressed[0]
	if s.Analyzer != "lockheld" || s.Line == 0 || !strings.HasSuffix(s.File, "storage.go") {
		t.Errorf("suppressed entry lacks analyzer/position: %+v", s)
	}
	if !strings.Contains(s.Reason, "couples fsync to its lock") {
		t.Errorf("suppressed entry lacks the directive reason: %+v", s)
	}
	if len(sum.Timings) == 0 {
		t.Errorf("summary carries no per-analyzer timings:\n%s", out)
	}

	out, code = runLint("-baseline", filepath.Join(tmp, "budget0.json"), "./...")
	if code != 1 {
		t.Fatalf("baseline 0 should fail with exit 1, got %d:\n%s", code, out)
	}
	if !strings.Contains(out, "exceed the baseline") {
		t.Fatalf("baseline failure not explained:\n%s", out)
	}

	out, code = runLint("-baseline", filepath.Join(tmp, "budget1.json"), "./...")
	if code != 0 {
		t.Fatalf("baseline 1 should pass, got %d:\n%s", code, out)
	}
}

// TestListNamesEveryAnalyzer keeps -list in sync with the suite.
func TestListNamesEveryAnalyzer(t *testing.T) {
	cmd := exec.Command("go", "run", "./cmd/mwslint", "-list")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("mwslint -list: %v\n%s", err, out)
	}
	for _, name := range []string{
		"cryptocompare", "randsource", "secretlog", "ctxflow", "wireops",
		"plainflow", "noncereuse", "keyzero", "vartime",
		"lockorder", "lockheld", "atomicmix", "goleak",
	} {
		if !strings.Contains(string(out), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
}
