// Command paramgen generates pairing parameter sets for the MWS system and
// prints them either as JSON or as Go source suitable for embedding as a
// preset. Parameter generation is an offline, one-time operation: deployed
// systems load vetted presets.
//
// Usage:
//
//	paramgen -pbits 512 -qbits 160 -name BF80 [-format go|json]
package main

import (
	"crypto/rand"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"mwskit/internal/pairing"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paramgen: ")
	pBits := flag.Int("pbits", 512, "bit length of the field characteristic p")
	qBits := flag.Int("qbits", 160, "bit length of the subgroup order q")
	name := flag.String("name", "Custom", "preset name for Go output")
	format := flag.String("format", "go", "output format: go or json")
	flag.Parse()

	pp, err := pairing.Generate(*pBits, *qBits, rand.Reader)
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	if err := pp.Validate(); err != nil {
		log.Fatalf("validate: %v", err)
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]string{
			"p": pp.P.String(), "q": pp.Q.String(),
			"gx": pp.Gx.String(), "gy": pp.Gy.String(),
		}); err != nil {
			log.Fatal(err)
		}
	case "go":
		fmt.Printf("// Params%s: p=%d bits, q=%d bits.\nvar Params%s = &Params{\n\tP:  mustBig(%q),\n\tQ:  mustBig(%q),\n\tGx: mustBig(%q),\n\tGy: mustBig(%q),\n}\n",
			*name, pp.P.BitLen(), pp.Q.BitLen(), *name,
			pp.P.String(), pp.Q.String(), pp.Gx.String(), pp.Gy.String())
	default:
		log.Fatalf("unknown format %q", *format)
	}
}
