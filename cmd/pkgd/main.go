// Command pkgd runs the Private Key Generator: it performs IBE Setup on
// first start (persisting the master secret under -dir), publishes the
// public parameters, and serves ticket-authenticated key-extraction
// requests.
//
//	pkgd -dir /var/lib/pkg -addr :7702 -shared-key-file mws-pkg.key -preset bf80
//
// The shared-key file must contain the same 32-byte hex key mwsd uses.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mwskit/internal/keyserver"
	"mwskit/internal/metrics"
	"mwskit/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pkgd: ")
	dir := flag.String("dir", "./pkg-data", "data directory")
	addr := flag.String("addr", "127.0.0.1:7702", "listen address")
	keyFile := flag.String("shared-key-file", "mws-pkg.key", "hex-encoded 32-byte MWS–PKG shared key")
	preset := flag.String("preset", "bf80", "pairing parameter preset: test, bf80, bf112")
	window := flag.Duration("freshness", 2*time.Minute, "accepted timestamp skew")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline (0 disables)")
	idleTimeout := flag.Duration("idle-timeout", 5*time.Minute, "disconnect connections idle this long (0 disables)")
	maxConns := flag.Int("max-conns", 4096, "max concurrently served connections (0 = unlimited)")
	statsEvery := flag.Duration("stats-interval", time.Minute, "per-op stats log period (0 disables)")
	flag.Parse()

	raw, err := os.ReadFile(*keyFile)
	if err != nil {
		log.Fatalf("read shared key: %v (run mwsd first to create it)", err)
	}
	sharedKey, err := hex.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil || len(sharedKey) != 32 {
		log.Fatalf("%s: invalid key material", *keyFile)
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	svc, err := keyserver.New(keyserver.Config{
		Dir:             *dir,
		Preset:          *preset,
		MWSPKGKey:       sharedKey,
		FreshnessWindow: *window,
		RequestTimeout:  *reqTimeout,
		Logger:          logger,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	srv, bound, err := svc.ListenAndServe(*addr,
		wire.WithIdleTimeout(*idleTimeout), wire.WithMaxConns(*maxConns))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pkgd: serving PKG on %s (preset %s, data in %s, request timeout %v, max conns %d)\n",
		bound, *preset, *dir, *reqTimeout, *maxConns)

	stopStats := make(chan struct{})
	if *statsEvery > 0 {
		go func() {
			t := time.NewTicker(*statsEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					logger.Info("pkg stats", "conns", srv.ConnCount(), "ops", metrics.FormatSnapshot(svc.Metrics()))
				case <-stopStats:
					return
				}
			}
		}()
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	close(stopStats)
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
}
