// Command pkgd runs the Private Key Generator: it performs IBE Setup on
// first start (persisting the master secret under -dir), publishes the
// public parameters, and serves ticket-authenticated key-extraction
// requests.
//
//	pkgd -dir /var/lib/pkg -addr :7702 -shared-key-file mws-pkg.key -preset bf80
//
// The shared-key file must contain the same 32-byte hex key mwsd uses.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mwskit/internal/keyserver"
	"mwskit/internal/metrics"
	"mwskit/internal/obsv"
	"mwskit/internal/wire"
)

func main() {
	dir := flag.String("dir", "./pkg-data", "data directory")
	addr := flag.String("addr", "127.0.0.1:7702", "listen address")
	keyFile := flag.String("shared-key-file", "mws-pkg.key", "hex-encoded 32-byte MWS–PKG shared key")
	preset := flag.String("preset", "bf80", "pairing parameter preset: test, bf80, bf112")
	window := flag.Duration("freshness", 2*time.Minute, "accepted timestamp skew")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline (0 disables)")
	idleTimeout := flag.Duration("idle-timeout", 5*time.Minute, "disconnect connections idle this long (0 disables)")
	maxConns := flag.Int("max-conns", 4096, "max concurrently served connections (0 = unlimited)")
	statsEvery := flag.Duration("stats-interval", time.Minute, "per-op stats log period (0 disables)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /traces, /healthz, /debug/pprof on this address (empty = disabled; bind localhost — it exposes profiles and span attributes)")
	traceRing := flag.Int("trace-ring", 4096, "finished-span ring capacity for /traces and the TTrace op")
	slowReq := flag.Duration("slow-request", time.Second, "log the span tree of requests slower than this (0 disables)")
	flag.Parse()

	logger, err := newLogger(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pkgd:", err)
		os.Exit(1)
	}

	raw, err := os.ReadFile(*keyFile)
	if err != nil {
		die(logger, "shared key", fmt.Errorf("%w (run mwsd first to create it)", err))
	}
	sharedKey, err := hex.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil || len(sharedKey) != 32 {
		die(logger, "shared key", fmt.Errorf("%s: invalid key material", *keyFile))
	}

	tracer := obsv.NewTracer("pkg", *traceRing, *slowReq, logger)
	svc, err := keyserver.New(keyserver.Config{
		Dir:             *dir,
		Preset:          *preset,
		MWSPKGKey:       sharedKey,
		FreshnessWindow: *window,
		RequestTimeout:  *reqTimeout,
		Logger:          logger,
		Tracer:          tracer,
	})
	if err != nil {
		die(logger, "open service", err)
	}
	defer svc.Close()

	srv, bound, err := svc.ListenAndServe(*addr,
		wire.WithIdleTimeout(*idleTimeout), wire.WithMaxConns(*maxConns))
	if err != nil {
		die(logger, "listen", err)
	}
	logger.Info("serving PKG", "addr", bound.String(), "preset", *preset, "dir", *dir,
		"request_timeout", *reqTimeout, "max_conns", *maxConns)
	if *debugAddr != "" {
		dsrv, dbound, err := obsv.ServeDebug(*debugAddr, "pkg", svc.StatsRegistry(), tracer)
		if err != nil {
			die(logger, "debug listener", err)
		}
		logger.Info("debug listener up", "addr", dbound.String(),
			"endpoints", "/metrics /healthz /traces /debug/pprof")
		defer dsrv.Close()
	}

	stopStats := make(chan struct{})
	if *statsEvery > 0 {
		go func() {
			t := time.NewTicker(*statsEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					logger.Info("pkg stats", "conns", srv.ConnCount(), "ops", metrics.FormatSnapshot(svc.Metrics()))
				case <-stopStats:
					return
				}
			}
		}()
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	close(stopStats)
	if err := srv.Close(); err != nil {
		die(logger, "shutdown", err)
	}
}

// newLogger builds the daemon-wide structured logger; one -log-level
// flag governs the whole process.
func newLogger(level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("invalid -log-level %q: %w", level, err)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}

// die logs a fatal error through the unified logger and exits non-zero.
func die(logger *slog.Logger, stage string, err error) {
	logger.Error("fatal", "stage", stage, "err", err)
	os.Exit(1)
}
