// Command pkgd runs the Private Key Generator: it performs IBE Setup on
// first start (persisting the master secret under -dir), publishes the
// public parameters, and serves ticket-authenticated key-extraction
// requests.
//
//	pkgd -dir /var/lib/pkg -addr :7702 -shared-key-file mws-pkg.key -preset bf80
//
// The shared-key file must contain the same 32-byte hex key mwsd uses.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mwskit/internal/keyserver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pkgd: ")
	dir := flag.String("dir", "./pkg-data", "data directory")
	addr := flag.String("addr", "127.0.0.1:7702", "listen address")
	keyFile := flag.String("shared-key-file", "mws-pkg.key", "hex-encoded 32-byte MWS–PKG shared key")
	preset := flag.String("preset", "bf80", "pairing parameter preset: test, bf80, bf112")
	window := flag.Duration("freshness", 2*time.Minute, "accepted timestamp skew")
	flag.Parse()

	raw, err := os.ReadFile(*keyFile)
	if err != nil {
		log.Fatalf("read shared key: %v (run mwsd first to create it)", err)
	}
	sharedKey, err := hex.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil || len(sharedKey) != 32 {
		log.Fatalf("%s: invalid key material", *keyFile)
	}

	svc, err := keyserver.New(keyserver.Config{
		Dir:             *dir,
		Preset:          *preset,
		MWSPKGKey:       sharedKey,
		FreshnessWindow: *window,
		Logger:          slog.New(slog.NewTextHandler(os.Stderr, nil)),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	srv, bound, err := svc.ListenAndServe(*addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pkgd: serving PKG on %s (preset %s, data in %s)\n", bound, *preset, *dir)

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
}
