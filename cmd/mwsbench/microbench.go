// Phase 0 of mwsbench: offline crypto microbenchmarks that isolate the
// IBE hot path from the network and storage layers. The cold/warm pair
// quantifies what the g_ID cache buys a device that reuses its nonce
// across an epoch (paper §V.D): cold pays MapToPoint + a Tate pairing
// per message, warm pays a cache lookup plus the per-message comb
// multiplication and GT exponentiation that keep session keys fresh.
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	"time"

	"mwskit/internal/attr"
	"mwskit/internal/bfibe"
	"mwskit/internal/device"
	"mwskit/internal/macauth"
	"mwskit/internal/metrics"
	"mwskit/internal/pairing"
)

// microResults is the phase-0 row of the JSON report.
type microResults struct {
	ExtractPerSec        float64 `json:"extract_per_sec"`
	PrepareColdPerSec    float64 `json:"prepare_cold_msgs_per_sec"`
	PrepareWarmPerSec    float64 `json:"prepare_warm_msgs_per_sec"`
	PrepareNoCachePerSec float64 `json:"prepare_nocache_msgs_per_sec"`
	WarmSpeedup          float64 `json:"warm_speedup"`
}

// rate runs op repeatedly for roughly budget and returns ops/second. One
// untimed warm-up call absorbs lazy initialization (the fixed-base comb,
// allocator warm-up) so it doesn't land inside the measurement.
func rate(budget time.Duration, op func()) float64 {
	op()
	var n int
	start := time.Now()
	for time.Since(start) < budget {
		for i := 0; i < 8; i++ {
			op()
		}
		n += 8
	}
	return metrics.Throughput(n, time.Since(start))
}

// preparer builds an offline device against params and returns a closure
// that prepares one deposit frame (everything up to, excluding, the wire
// round trip).
func preparer(params *bfibe.Params, epoch int) func() {
	d, err := device.New("BENCH-SD", make([]byte, macauth.KeyLen), params,
		device.WithNonceEpoch(epoch))
	if err != nil {
		log.Fatalf("micro: %v", err)
	}
	a := attr.Attribute("ELECTRIC-METER-BENCH")
	payload := make([]byte, 64)
	return func() {
		if _, err := d.PrepareDeposit(a, payload); err != nil {
			log.Fatalf("micro: prepare: %v", err)
		}
	}
}

// runMicro measures the offline hot path on the named preset. warmEpoch
// is the nonce-epoch length used for the warm measurements.
func runMicro(preset string, warmEpoch int, budget time.Duration) microResults {
	pp, ok := pairing.Presets[preset]
	if !ok {
		log.Fatalf("micro: unknown preset %q", preset)
	}
	sys := pp.MustSystem()
	params, master, err := bfibe.Setup(sys, rand.Reader)
	if err != nil {
		log.Fatalf("micro: setup: %v", err)
	}

	var res microResults

	extractID := 0
	res.ExtractPerSec = rate(budget, func() {
		extractID++
		if _, err := master.Extract(params, fmt.Appendf(nil, "SD-%d", extractID)); err != nil {
			log.Fatalf("micro: extract: %v", err)
		}
	})

	// Each measurement gets its own Params so one run's cache contents
	// can't subsidize the next.
	res.PrepareColdPerSec = rate(budget, preparer(bfibe.ParamsFromMaster(sys, master), 1))

	res.PrepareWarmPerSec = rate(budget, preparer(bfibe.ParamsFromMaster(sys, master), warmEpoch))

	nocache := bfibe.ParamsFromMaster(sys, master)
	nocache.SetGIDCacheCap(0)
	res.PrepareNoCachePerSec = rate(budget, preparer(nocache, warmEpoch))

	if res.PrepareColdPerSec > 0 {
		res.WarmSpeedup = res.PrepareWarmPerSec / res.PrepareColdPerSec
	}
	return res
}
