package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"mwskit/internal/attr"
	"mwskit/internal/core"
	"mwskit/internal/device"
	"mwskit/internal/metrics"
	"mwskit/internal/obsv"
	"mwskit/internal/rclient"
	"mwskit/internal/storage"
)

// storageBenchResult is one backend's score on the mixed concurrent
// deposit/retrieve phase. FsyncsPerDeposit is the group-commit headline:
// under SyncAlways the local store pays ≥1 fsync per acked deposit, the
// sharded store amortizes batched same-shard deposits into shared syncs.
type storageBenchResult struct {
	Phase            string  `json:"phase"`
	Backend          string  `json:"backend"`
	Shards           int     `json:"shards"`
	Workers          int     `json:"workers"`
	Attributes       int     `json:"attributes"`
	Messages         int     `json:"messages"`
	Retrieves        int     `json:"retrieves"`
	MsgPerSec        float64 `json:"msgs_per_sec"`
	P50Micros        int64   `json:"p50_us"`
	P99Micros        int64   `json:"p99_us"`
	WALAppends       uint64  `json:"wal_appends"`
	WALFsyncs        uint64  `json:"wal_fsyncs"`
	FsyncsPerDeposit float64 `json:"fsyncs_per_deposit"`
}

// runStorageBench stands up a fresh deployment on the given backend and
// drives the mixed phase: `workers` depositor goroutines (each with its
// own device, connection, and attribute stride across `attrs` attributes)
// racing alongside two retrieving clients that poll their grants over the
// wire. Durability is SyncAlways throughout — this benchmark measures the
// cost of honoring the ack contract, not of skipping it.
func runStorageBench(preset, scheme, backend string, shards int, groupCommit time.Duration, workers, messages, attrs int) storageBenchResult {
	dir, err := os.MkdirTemp("", "mwsbench-storage-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	dep, err := core.NewDeployment(core.DeploymentConfig{
		Dir:    dir,
		Preset: preset,
		Scheme: scheme,
		Sync:   storage.SyncAlways,
		Storage: storage.Options{
			Backend:     backend,
			Shards:      shards,
			GroupCommit: groupCommit,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	if err := dep.Start(); err != nil {
		log.Fatal(err)
	}

	attributes := make([]string, attrs)
	for i := range attributes {
		attributes[i] = fmt.Sprintf("SHARD-BENCH-%02d", i)
	}

	devices := make([]*device.Device, workers)
	for i := range devices {
		id := fmt.Sprintf("bench-meter-%02d", i)
		key, err := dep.MWS.RegisterDevice(id)
		if err != nil {
			log.Fatal(err)
		}
		devices[i], err = dep.NewDevice(id, key, device.WithNonceEpoch(64))
		if err != nil {
			log.Fatal(err)
		}
	}

	// Two retrieving clients splitting the attribute space between them.
	type retriever struct {
		id    string
		attrs []string
	}
	retrievers := []retriever{
		{id: "bench-rc-even"}, {id: "bench-rc-odd"},
	}
	for i, a := range attributes {
		r := &retrievers[i%2]
		r.attrs = append(r.attrs, a)
	}
	rcs := make([]*rclient.Client, len(retrievers))
	for i, r := range retrievers {
		rc, err := dep.EnrollClient(r.id, []byte("pw-"+r.id))
		if err != nil {
			log.Fatal(err)
		}
		for _, a := range r.attrs {
			if _, err := dep.Grant(r.id, attr.Attribute(a)); err != nil {
				log.Fatal(err)
			}
		}
		rcs[i] = rc
	}

	countersBefore := obsv.CounterMap()
	hist := metrics.NewHistogram()
	var histMu sync.Mutex
	var wg sync.WaitGroup
	depositsDone := make(chan struct{})
	var retrieves atomic.Int64

	// Retrieval side of the mixed phase: poll until the depositors finish.
	var rwg sync.WaitGroup
	for _, rc := range rcs {
		rc := rc
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			mwsConn, err := dep.DialMWS()
			if err != nil {
				log.Fatal(err)
			}
			defer mwsConn.Close()
			pkgConn, err := dep.DialPKG()
			if err != nil {
				log.Fatal(err)
			}
			defer pkgConn.Close()
			for {
				select {
				case <-depositsDone:
					return
				default:
				}
				if _, err := rc.RetrieveAndDecrypt(mwsConn, pkgConn, 0, 16); err != nil {
					log.Fatalf("mixed retrieve: %v", err)
				}
				retrieves.Add(1)
				// Polling cadence: real retrieving clients poll on a
				// timer; spinning here would just measure the retrievers
				// stealing CPU from the deposit path.
				select {
				case <-depositsDone:
					return
				case <-time.After(20 * time.Millisecond):
				}
			}
		}()
	}

	perWorker := messages / workers
	start := time.Now()
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := dep.DialMWS()
			if err != nil {
				log.Fatal(err)
			}
			defer conn.Close()
			payload := []byte("reading=42.0kWh")
			for i := 0; i < perWorker; i++ {
				a := attributes[(w+i)%len(attributes)]
				t0 := time.Now()
				if _, err := devices[w].Deposit(conn, attr.Attribute(a), payload); err != nil {
					log.Fatalf("mixed deposit: %v", err)
				}
				d := time.Since(t0)
				histMu.Lock()
				hist.Observe(d)
				histMu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(depositsDone)
	rwg.Wait()

	counters := obsv.CounterMap()
	deposited := perWorker * workers
	snap := hist.Snapshot()
	res := storageBenchResult{
		Phase:      "service-mixed",
		Backend:    backend,
		Shards:     dep.MWS.Store().Shards(),
		Workers:    workers,
		Attributes: attrs,
		Messages:   deposited,
		Retrieves:  int(retrieves.Load()),
		MsgPerSec:  metrics.Throughput(deposited, elapsed),
		P50Micros:  snap.P50.Microseconds(),
		P99Micros:  snap.P99.Microseconds(),
		WALAppends: counters["wal_appends"] - countersBefore["wal_appends"],
		WALFsyncs:  counters["wal_fsyncs"] - countersBefore["wal_fsyncs"],
	}
	if deposited > 0 {
		res.FsyncsPerDeposit = float64(res.WALFsyncs) / float64(deposited)
	}
	return res
}

// runProviderBench measures the storage engines themselves: `workers`
// goroutines appending straight into a storage.Provider under SyncAlways,
// no crypto or wire protocol in the way. This isolates what the sharded
// layout buys — parallel fsyncs plus group-commit batching — from the
// end-to-end path, which on small machines is bound by the IBE hot path
// long before the store.
func runProviderBench(backend string, shards int, groupCommit time.Duration, workers, messages, attrs int) storageBenchResult {
	dir, err := os.MkdirTemp("", "mwsbench-provider-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	p, err := storage.Open(storage.Config{Dir: dir, Sync: storage.SyncAlways,
		Options: storage.Options{Backend: backend, Shards: shards, GroupCommit: groupCommit}})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	attributes := make([]attr.Attribute, attrs)
	for i := range attributes {
		attributes[i] = attr.Attribute(fmt.Sprintf("SHARD-BENCH-%02d", i))
	}
	payload := []byte("reading=42.0kWh;padding-to-a-realistic-ciphertext-size-......")

	countersBefore := obsv.CounterMap()
	hist := metrics.NewHistogram()
	var histMu sync.Mutex
	var wg sync.WaitGroup
	perWorker := messages / workers
	start := time.Now()
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m := &storage.Message{
					DeviceID:   fmt.Sprintf("bench-meter-%02d", w),
					Attribute:  attributes[(w+i)%len(attributes)],
					Ciphertext: payload,
					Timestamp:  int64(i),
				}
				t0 := time.Now()
				if _, err := p.Append(context.Background(), m); err != nil {
					log.Fatalf("provider append: %v", err)
				}
				d := time.Since(t0)
				histMu.Lock()
				hist.Observe(d)
				histMu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	counters := obsv.CounterMap()
	deposited := perWorker * workers
	snap := hist.Snapshot()
	res := storageBenchResult{
		Phase:      "provider-concurrent",
		Backend:    backend,
		Shards:     p.Shards(),
		Workers:    workers,
		Attributes: attrs,
		Messages:   deposited,
		MsgPerSec:  metrics.Throughput(deposited, elapsed),
		P50Micros:  snap.P50.Microseconds(),
		P99Micros:  snap.P99.Microseconds(),
		WALAppends: counters["wal_appends"] - countersBefore["wal_appends"],
		WALFsyncs:  counters["wal_fsyncs"] - countersBefore["wal_fsyncs"],
	}
	if deposited > 0 {
		res.FsyncsPerDeposit = float64(res.WALFsyncs) / float64(deposited)
	}
	return res
}

// compareStorageBackends benchmarks local vs sharded twice — first the
// storage engines alone under heavy append concurrency, then the full
// service with a mixed deposit/retrieve workload — and prints the
// side-by-sides. The provider phase is the PR's acceptance number: the
// sharded engine must beat local at concurrent deposits, on fewer fsyncs
// per acked append.
func compareStorageBackends(preset, scheme string, shards int, groupCommit time.Duration, workers, messages, attrs int) []storageBenchResult {
	provWorkers, provMessages := 4*workers, 8*messages
	fmt.Printf("\nstorage engine, concurrent appends (SyncAlways, %d workers, %d msgs, %d attrs):\n",
		provWorkers, provMessages, attrs)
	results := []storageBenchResult{
		runProviderBench(storage.BackendLocal, 0, 0, provWorkers, provMessages, attrs),
		runProviderBench(storage.BackendSharded, shards, groupCommit, provWorkers, provMessages, attrs),
	}
	printStoragePair(results[0], results[1])

	fmt.Printf("\nservice, mixed deposit/retrieve phase (SyncAlways, %d workers, %d msgs, %d attrs):\n",
		workers, messages, attrs)
	results = append(results,
		runStorageBench(preset, scheme, storage.BackendLocal, 0, 0, workers, messages, attrs),
		runStorageBench(preset, scheme, storage.BackendSharded, shards, groupCommit, workers, messages, attrs),
	)
	printStoragePair(results[2], results[3])
	return results
}

// printStoragePair prints a local/sharded result pair and their ratio.
func printStoragePair(local, sharded storageBenchResult) {
	for _, r := range []storageBenchResult{local, sharded} {
		extra := ""
		if r.Phase == "service-mixed" {
			extra = fmt.Sprintf("  (%d retrieves alongside)", r.Retrieves)
		}
		fmt.Printf("  %-8s shards=%-2d  %8.1f msg/s  p50=%6dus p99=%6dus  fsyncs/deposit=%.3f%s\n",
			r.Backend, r.Shards, r.MsgPerSec, r.P50Micros, r.P99Micros, r.FsyncsPerDeposit, extra)
	}
	if local.MsgPerSec > 0 {
		fmt.Printf("  sharded vs local: %.2fx deposit throughput, %.1f%% of local's fsyncs\n",
			sharded.MsgPerSec/local.MsgPerSec,
			100*safeDiv(float64(sharded.WALFsyncs), float64(local.WALFsyncs)))
	}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
