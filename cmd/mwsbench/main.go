// Command mwsbench is the end-to-end load generator: it spins up a full
// in-process deployment (MWS + PKG over loopback TCP), drives a synthetic
// smart-meter fleet against it, and prints per-phase latency and
// throughput rows — the measurements the paper's evaluation section never
// published (experiments E5 and E8).
//
//	mwsbench -preset test -meters 30 -messages 300 -scheme AES-128-GCM
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mwskit/internal/core"
	"mwskit/internal/device"
	"mwskit/internal/metrics"
	"mwskit/internal/obsv"
	"mwskit/internal/rclient"
	"mwskit/internal/sim"
	"mwskit/internal/storage"
	"mwskit/internal/wal"
)

// benchReport is the machine-readable result (-json), one object per run.
type benchReport struct {
	Preset     string           `json:"preset"`
	Scheme     string           `json:"scheme"`
	Auth       string           `json:"auth"`
	Meters     int              `json:"meters"`
	Messages   int              `json:"messages"`
	NonceEpoch int              `json:"nonce_epoch"`
	Micro      microResults     `json:"micro"`
	Deposit    depositResult    `json:"deposit"`
	Counters   counterResult    `json:"deposit_counters"`
	Retrieve   []retrieveResult `json:"retrieve"`
	// Storage holds the mixed-phase backend comparison (-compare-storage):
	// local vs sharded under SyncAlways, concurrent depositors + retrievers.
	Storage []storageBenchResult `json:"storage,omitempty"`
}

type depositResult struct {
	Messages   int     `json:"messages"`
	MsgPerSec  float64 `json:"msgs_per_sec"`
	P50Micros  int64   `json:"p50_us"`
	P90Micros  int64   `json:"p90_us"`
	P99Micros  int64   `json:"p99_us"`
	MeanMicros int64   `json:"mean_us"`
}

type retrieveResult struct {
	Company   string  `json:"company"`
	Messages  int     `json:"messages"`
	MsgPerSec float64 `json:"msgs_per_sec"`
}

// counterResult is the crypto-stage telemetry delta across the deposit
// phase, taken from the obsv process counters (the deployment runs
// in-process, so client encapsulation and server verification both
// land in the same counters — exactly the end-to-end cost per message).
type counterResult struct {
	Pairings           uint64  `json:"pairings"`
	PairingsPerDeposit float64 `json:"pairings_per_deposit"`
	ScalarMultSecret   uint64  `json:"scalar_mult_secret"`
	ScalarMultPublic   uint64  `json:"scalar_mult_public"`
	GIDCacheHits       uint64  `json:"gid_cache_hits"`
	GIDCacheMisses     uint64  `json:"gid_cache_misses"`
	GIDCacheHitRate    float64 `json:"gid_cache_hit_rate"`
	WALAppends         uint64  `json:"wal_appends"`
	WALFsyncs          uint64  `json:"wal_fsyncs"`
	StoreWriteBytes    uint64  `json:"store_write_bytes"`
	ConnOutBytes       uint64  `json:"conn_out_bytes"`
}

// counterDelta reduces two CounterMap samples bracketing the deposit
// phase into the derived per-message rates.
func counterDelta(before, after map[string]uint64, messages int) counterResult {
	d := func(name string) uint64 { return after[name] - before[name] }
	c := counterResult{
		Pairings:         d("pairing_ops"),
		ScalarMultSecret: d("scalar_mult_secret"),
		ScalarMultPublic: d("scalar_mult_public"),
		GIDCacheHits:     d("gid_cache_hits"),
		GIDCacheMisses:   d("gid_cache_misses"),
		WALAppends:       d("wal_appends"),
		WALFsyncs:        d("wal_fsyncs"),
		StoreWriteBytes:  d("store_write_bytes"),
		ConnOutBytes:     d("conn_out_bytes"),
	}
	if messages > 0 {
		c.PairingsPerDeposit = float64(c.Pairings) / float64(messages)
	}
	if lookups := c.GIDCacheHits + c.GIDCacheMisses; lookups > 0 {
		c.GIDCacheHitRate = float64(c.GIDCacheHits) / float64(lookups)
	}
	return c
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mwsbench: ")
	preset := flag.String("preset", "test", "pairing preset: test, bf80, bf112")
	scheme := flag.String("scheme", "AES-128-GCM", "symmetric scheme")
	meters := flag.Int("meters", 30, "meters per kind (3 kinds)")
	messages := flag.Int("messages", 300, "total messages to deposit")
	seed := flag.Int64("seed", 1, "workload seed")
	authMode := flag.String("auth", "mac", "device auth mode: mac (shared key) or ibs (identity-based signature)")
	nonceEpoch := flag.Int("nonce-epoch", 1, "deposits sharing one nonce per device (1 = fresh nonce per message)")
	jsonPath := flag.String("json", "", "also write results as JSON to this file")
	microBudget := flag.Duration("micro-budget", time.Second, "time budget per phase-0 microbenchmark")
	storageBackend := flag.String("storage", "", "storage backend for the main deployment (empty = local)")
	shards := flag.Int("shards", 8, "partition count for the sharded backend")
	groupCommit := flag.Duration("group-commit", storage.DefaultGroupCommit, "extra fsync batching delay for the sharded backend (0 = batch only during in-flight syncs)")
	compareStorage := flag.Bool("compare-storage", false, "also run the mixed concurrent deposit/retrieve phase on local vs sharded backends (SyncAlways) and report both")
	mixedWorkers := flag.Int("mixed-workers", 8, "depositor goroutines in the mixed phase")
	mixedMessages := flag.Int("mixed-messages", 400, "total deposits in the mixed phase")
	mixedAttrs := flag.Int("mixed-attrs", 16, "distinct attributes in the mixed phase")
	flag.Parse()

	// Phase 0: offline crypto microbenchmarks, no deployment involved.
	warmEpoch := *nonceEpoch
	if warmEpoch <= 1 {
		warmEpoch = 64
	}
	micro := runMicro(*preset, warmEpoch, *microBudget)
	fmt.Printf("offline hot path (preset=%s):\n", *preset)
	fmt.Printf("  extract:                %8.1f ops/s\n", micro.ExtractPerSec)
	fmt.Printf("  prepare cold (epoch=1): %8.1f msg/s\n", micro.PrepareColdPerSec)
	fmt.Printf("  prepare warm (epoch=%d): %7.1f msg/s\n", warmEpoch, micro.PrepareWarmPerSec)
	fmt.Printf("  prepare warm, no cache: %8.1f msg/s\n", micro.PrepareNoCachePerSec)
	fmt.Printf("  warm speedup:           %8.1fx\n\n", micro.WarmSpeedup)

	dir, err := os.MkdirTemp("", "mwsbench-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	dep, err := core.NewDeployment(core.DeploymentConfig{
		Dir:    dir,
		Preset: *preset,
		Scheme: *scheme,
		Sync:   wal.SyncNever,
		Storage: storage.Options{
			Backend:     *storageBackend,
			Shards:      *shards,
			GroupCommit: *groupCommit,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	if err := dep.Start(); err != nil {
		log.Fatal(err)
	}

	fleet := sim.NewFleet(sim.FleetConfig{
		Seed:    *seed,
		PerSite: map[sim.MeterKind]int{sim.Electric: *meters, sim.Water: *meters, sim.Gas: *meters},
	})
	fmt.Printf("deployment: preset=%s scheme=%s auth=%s meters=%d attrs=%d\n",
		*preset, *scheme, *authMode, len(fleet.Meters), len(fleet.Attributes()))

	mwsConn, err := dep.DialMWS()
	if err != nil {
		log.Fatal(err)
	}
	defer mwsConn.Close()
	pkgConn, err := dep.DialPKG()
	if err != nil {
		log.Fatal(err)
	}
	defer pkgConn.Close()

	// Register every meter.
	type deviceEntry struct {
		meter *sim.Meter
		dev   *device.Device
	}
	devices := make([]deviceEntry, len(fleet.Meters))
	epochOpt := device.WithNonceEpoch(*nonceEpoch)
	for i, m := range fleet.Meters {
		var sd *device.Device
		var err error
		switch *authMode {
		case "mac":
			var key []byte
			key, err = dep.MWS.RegisterDevice(m.ID)
			if err != nil {
				log.Fatal(err)
			}
			sd, err = dep.NewDevice(m.ID, key, epochOpt)
		case "ibs":
			sd, err = dep.NewSigningDevice(m.ID, epochOpt)
		default:
			log.Fatalf("unknown auth mode %q", *authMode)
		}
		if err != nil {
			log.Fatal(err)
		}
		devices[i] = deviceEntry{meter: m, dev: sd}
	}

	// Enroll the Figure 1 companies and grant their attribute sets.
	scenario := sim.Figure1Scenario([]string{"APTCOMPLEX-SV-CA"})
	rcs := map[string]*rclient.Client{}
	for company, attrs := range scenario.Companies {
		rc, err := dep.EnrollClient(company, []byte("pw-"+company))
		if err != nil {
			log.Fatal(err)
		}
		for _, a := range attrs {
			if _, err := dep.Grant(company, a); err != nil {
				log.Fatal(err)
			}
		}
		rcs[company] = rc
	}

	// Phase 1: deposits. Bracket the phase with counter samples so the
	// report can state pairings-per-deposit and the g_ID cache hit rate.
	countersBefore := obsv.CounterMap()
	depositHist := metrics.NewHistogram()
	start := time.Now()
	for i := 0; i < *messages; i++ {
		e := devices[i%len(devices)]
		em := e.meter.Next()
		depositHist.Time(func() {
			if _, err := e.dev.Deposit(mwsConn, em.Attribute, em.Payload); err != nil {
				log.Fatalf("deposit: %v", err)
			}
		})
	}
	depositElapsed := time.Since(start)
	counters := counterDelta(countersBefore, obsv.CounterMap(), *messages)
	depositSnap := depositHist.Snapshot()
	fmt.Printf("\nSD–MWS deposit phase:   %s\n", depositSnap)
	fmt.Printf("  throughput: %.1f msg/s\n", metrics.Throughput(*messages, depositElapsed))
	fmt.Printf("  pairings: %d (%.2f per deposit)  scalar mults: %d secret / %d public\n",
		counters.Pairings, counters.PairingsPerDeposit, counters.ScalarMultSecret, counters.ScalarMultPublic)
	fmt.Printf("  g_ID cache: %d hits / %d misses (%.1f%% hit rate)  wal: %d appends / %d fsyncs\n",
		counters.GIDCacheHits, counters.GIDCacheMisses, 100*counters.GIDCacheHitRate,
		counters.WALAppends, counters.WALFsyncs)

	report := benchReport{
		Preset:     *preset,
		Scheme:     *scheme,
		Auth:       *authMode,
		Meters:     *meters,
		Messages:   *messages,
		NonceEpoch: *nonceEpoch,
		Micro:      micro,
		Counters:   counters,
		Deposit: depositResult{
			Messages:   *messages,
			MsgPerSec:  metrics.Throughput(*messages, depositElapsed),
			P50Micros:  depositSnap.P50.Microseconds(),
			P90Micros:  depositSnap.P90.Microseconds(),
			P99Micros:  depositSnap.P99.Microseconds(),
			MeanMicros: depositSnap.Mean.Microseconds(),
		},
	}

	// Phase 2+3: each company retrieves and decrypts everything it may see.
	for _, company := range []string{"C-Services", "Electric-and-Gas-Co", "Water-and-Resources-Co"} {
		rc := rcs[company]
		start := time.Now()
		msgs, err := rc.RetrieveAndDecrypt(mwsConn, pkgConn, 0, 0)
		if err != nil {
			log.Fatalf("%s: %v", company, err)
		}
		elapsed := time.Since(start)
		fmt.Printf("%-24s retrieved+decrypted %4d msgs in %v (%.1f msg/s)\n",
			company+":", len(msgs), elapsed.Round(time.Millisecond), metrics.Throughput(len(msgs), elapsed))
		report.Retrieve = append(report.Retrieve, retrieveResult{
			Company:   company,
			Messages:  len(msgs),
			MsgPerSec: metrics.Throughput(len(msgs), elapsed),
		})
	}

	// Phase 4 (optional): the storage-backend comparison on fresh
	// deployments, after the main deployment's phases are done so the
	// obsv counter brackets don't interleave.
	if *compareStorage {
		report.Storage = compareStorageBackends(*preset, *scheme, *shards, *groupCommit,
			*mixedWorkers, *mixedMessages, *mixedAttrs)
	}

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *jsonPath)
	}
}
