// Command rcclient is the receiving-client CLI: it logs in to the MWS
// Gatekeeper, retrieves pending messages, obtains the per-message private
// keys from the PKG via the ticket/token flow, and prints the decrypted
// payloads.
//
// Generate a keypair (once) and register with mwsd:
//
//	rcclient keygen -rsa-key rc.key -pubkey rc.pem
//	mwsd -dir ... register-client c-services -password-file pw.txt -pubkey rc.pem
//
// Retrieve:
//
//	rcclient -id c-services -password-file pw.txt -rsa-key rc.key \
//	         -mws 127.0.0.1:7701 -pkg 127.0.0.1:7702 [-from 17]
package main

import (
	"context"
	"crypto/rand"
	"crypto/rsa"
	"crypto/x509"
	"encoding/pem"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"mwskit/internal/device"
	"mwskit/internal/obsv"
	"mwskit/internal/rclient"
	"mwskit/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rcclient: ")
	id := flag.String("id", "", "client identity")
	passwordFile := flag.String("password-file", "", "file holding the client password")
	rsaKeyFile := flag.String("rsa-key", "rc.key", "PEM file with the client's RSA private key")
	pubKeyFile := flag.String("pubkey", "rc.pem", "output PEM for keygen")
	mwsAddr := flag.String("mws", "127.0.0.1:7701", "MWS address")
	pkgAddr := flag.String("pkg", "127.0.0.1:7702", "PKG address")
	from := flag.Uint64("from", 0, "inclusive sequence cursor")
	limit := flag.Uint("limit", 0, "maximum messages to fetch (0 = all)")
	search := flag.String("search", "", "keyword: fetch only messages tagged with this keyword (searchable encryption)")
	bits := flag.Int("bits", 2048, "RSA key size for keygen")
	trace := flag.Bool("trace", false, "negotiate wire tracing and stamp the retrieval with a trace ID (query it back via the servers' TTrace or /traces)")
	flag.Parse()

	if flag.Arg(0) == "keygen" {
		if err := keygen(*rsaKeyFile, *pubKeyFile, *bits); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (private) and %s (public — hand to the MWS admin)\n", *rsaKeyFile, *pubKeyFile)
		return
	}

	if *id == "" || *passwordFile == "" {
		log.Fatal("-id and -password-file are required")
	}
	pw, err := os.ReadFile(*passwordFile)
	if err != nil {
		log.Fatal(err)
	}
	priv, err := readRSAPrivateKey(*rsaKeyFile)
	if err != nil {
		log.Fatal(err)
	}

	pkgConn, err := wire.Dial(*pkgAddr)
	if err != nil {
		log.Fatalf("dial PKG: %v", err)
	}
	defer pkgConn.Close()
	params, err := device.FetchParams(pkgConn)
	if err != nil {
		log.Fatalf("fetch parameters: %v", err)
	}
	rc, err := rclient.New(*id, []byte(strings.TrimSpace(string(pw))), priv, params)
	if err != nil {
		log.Fatal(err)
	}
	mwsConn, err := wire.Dial(*mwsAddr)
	if err != nil {
		log.Fatalf("dial MWS: %v", err)
	}
	defer mwsConn.Close()

	// With -trace, the whole retrieval (MWS retrieve, PKG extract, local
	// decrypt) runs under one client-generated root span; both servers'
	// stage spans stitch to its trace ID.
	ctx := context.Background()
	var root *obsv.Span
	if *trace {
		for _, c := range []*wire.Client{mwsConn, pkgConn} {
			if _, err := c.EnableTrace(ctx); err != nil {
				log.Fatalf("trace negotiation: %v", err)
			}
		}
		tracer := obsv.NewTracer("rcclient", 64, 0, nil)
		ctx, root = tracer.StartRoot(ctx, "rcclient.retrieve")
	}

	var msgs []*rclient.Message
	if *search != "" {
		boot, err := rc.RetrieveContext(ctx, mwsConn, *from, 1)
		if err != nil {
			log.Fatalf("retrieve: %v", err)
		}
		trapdoor, err := rc.FetchTrapdoor(pkgConn, boot, *search)
		if err != nil {
			log.Fatalf("trapdoor: %v", err)
		}
		hits, err := rc.Search(mwsConn, trapdoor, *from, uint32(*limit))
		if err != nil {
			log.Fatalf("search: %v", err)
		}
		keys, _, err := rc.FetchKeysContext(ctx, pkgConn, hits)
		if err != nil {
			log.Fatalf("keys: %v", err)
		}
		for i := range hits.Items {
			for _, sk := range keys {
				if m, err := rc.Decrypt(&hits.Items[i], sk); err == nil {
					msgs = append(msgs, m)
					break
				}
			}
		}
	} else {
		msgs, err = rc.RetrieveAndDecryptContext(ctx, mwsConn, pkgConn, *from, uint32(*limit))
		if err != nil {
			log.Fatalf("retrieve: %v", err)
		}
	}
	root.End()
	if root != nil {
		defer fmt.Printf("trace id %d\n", root.Context().TraceID)
	}
	if len(msgs) == 0 {
		fmt.Println("no messages")
		return
	}
	for _, m := range msgs {
		fmt.Printf("#%d  %s  %s  %s\n", m.Seq, time.Unix(m.Timestamp, 0).UTC().Format(time.RFC3339), m.DeviceID, m.Payload)
	}
}

func keygen(privPath, pubPath string, bits int) error {
	priv, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return err
	}
	privDER, err := x509.MarshalPKCS8PrivateKey(priv)
	if err != nil {
		return err
	}
	privPEM := pem.EncodeToMemory(&pem.Block{Type: "PRIVATE KEY", Bytes: privDER})
	if err := os.WriteFile(privPath, privPEM, 0o600); err != nil {
		return err
	}
	pubDER, err := x509.MarshalPKIXPublicKey(&priv.PublicKey)
	if err != nil {
		return err
	}
	pubPEM := pem.EncodeToMemory(&pem.Block{Type: "PUBLIC KEY", Bytes: pubDER})
	return os.WriteFile(pubPath, pubPEM, 0o644)
}

func readRSAPrivateKey(path string) (*rsa.PrivateKey, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	block, _ := pem.Decode(raw)
	if block == nil {
		return nil, fmt.Errorf("rcclient: %s: not PEM", path)
	}
	parsed, err := x509.ParsePKCS8PrivateKey(block.Bytes)
	if err != nil {
		return nil, err
	}
	priv, ok := parsed.(*rsa.PrivateKey)
	if !ok {
		return nil, fmt.Errorf("rcclient: %s: not an RSA key", path)
	}
	return priv, nil
}
