// Command smartdev is the smart-device client — the command-line
// equivalent of the paper's Figure 5 web form. It fetches the IBE system
// parameters from the PKG, encrypts a message toward an attribute, and
// deposits it at the MWS.
//
// One-shot:
//
//	smartdev -id meter-001 -mac-key <hex> -mws 127.0.0.1:7701 -pkg 127.0.0.1:7702 \
//	         -attr ELECTRIC-APTCOMPLEX-SV-CA -message "reading=42.7kWh"
//
// Interactive demo (Figure 5 equivalent):
//
//	smartdev -id meter-001 -mac-key <hex> -mws ... -pkg ... -demo
package main

import (
	"bufio"
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"mwskit/internal/attr"
	"mwskit/internal/device"
	"mwskit/internal/obsv"
	"mwskit/internal/symenc"
	"mwskit/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("smartdev: ")
	id := flag.String("id", "", "device identity (required)")
	macKeyHex := flag.String("mac-key", "", "hex MAC key from mwsd register-device (required)")
	mwsAddr := flag.String("mws", "127.0.0.1:7701", "MWS address")
	pkgAddr := flag.String("pkg", "127.0.0.1:7702", "PKG address")
	attribute := flag.String("attr", "", "recipient attribute, e.g. ELECTRIC-APTCOMPLEX-SV-CA")
	message := flag.String("message", "", "message body")
	keywords := flag.String("keywords", "", "comma-separated searchable keywords to tag the message with")
	schemeName := flag.String("scheme", "AES-128-GCM", "symmetric scheme: "+strings.Join(symenc.Names(), ", "))
	demo := flag.Bool("demo", false, "interactive mode (Figure 5 equivalent)")
	trace := flag.Bool("trace", false, "negotiate wire tracing and stamp the deposit with a trace ID (query it back via mwsd's TTrace or /traces)")
	flag.Parse()

	if *id == "" || *macKeyHex == "" {
		log.Fatal("-id and -mac-key are required")
	}
	macKey, err := hex.DecodeString(*macKeyHex)
	if err != nil {
		log.Fatal("invalid -mac-key hex")
	}
	scheme, err := symenc.ByName(*schemeName)
	if err != nil {
		log.Fatal(err)
	}

	pkgConn, err := wire.Dial(*pkgAddr)
	if err != nil {
		log.Fatalf("dial PKG: %v", err)
	}
	defer pkgConn.Close()
	params, err := device.FetchParams(pkgConn)
	if err != nil {
		log.Fatalf("fetch parameters: %v", err)
	}
	sd, err := device.New(*id, macKey, params, device.WithScheme(scheme))
	if err != nil {
		log.Fatal(err)
	}
	mwsConn, err := wire.Dial(*mwsAddr)
	if err != nil {
		log.Fatalf("dial MWS: %v", err)
	}
	defer mwsConn.Close()

	if *demo {
		runDemo(sd, mwsConn)
		return
	}
	if *attribute == "" || *message == "" {
		log.Fatal("-attr and -message are required (or use -demo)")
	}

	// With -trace, the deposit runs under a client-generated root span
	// whose trace ID rides the wire to the MWS; the server's stage spans
	// (decode, auth, replay, store.write, wal.append) stitch to it.
	ctx := context.Background()
	var root *obsv.Span
	if *trace {
		v2, err := mwsConn.EnableTrace(ctx)
		if err != nil {
			log.Fatalf("trace negotiation: %v", err)
		}
		if !v2 {
			log.Print("server does not speak protocol v2; depositing untraced")
		}
		tracer := obsv.NewTracer("smartdev", 64, 0, nil)
		ctx, root = tracer.StartRoot(ctx, "smartdev.deposit")
	}
	var seq uint64
	if *keywords != "" {
		kws := strings.Split(*keywords, ",")
		seq, err = sd.DepositTaggedContext(ctx, mwsConn, attr.Attribute(*attribute), []byte(*message), kws)
	} else {
		seq, err = sd.DepositContext(ctx, mwsConn, attr.Attribute(*attribute), []byte(*message))
	}
	root.End()
	if err != nil {
		log.Fatalf("deposit: %v", err)
	}
	fmt.Printf("deposited message #%d toward %s\n", seq, *attribute)
	if root != nil {
		fmt.Printf("trace id %d\n", root.Context().TraceID)
	}
}

// runDemo is the text-mode equivalent of the Figure 5 web form: pick an
// attribute, type a message, submit.
func runDemo(sd *device.Device, mwsConn *wire.Client) {
	presets := []attr.Attribute{
		"ELECTRIC-APTCOMPLEX-SV-CA",
		"WATER-APTCOMPLEX-SV-CA",
		"GAS-APTCOMPLEX-SV-CA",
	}
	in := bufio.NewScanner(os.Stdin)
	fmt.Printf("Smart Device %s — message submission (Ctrl-D to quit)\n", sd.ID())
	for {
		fmt.Println("\nAttributes:")
		for i, a := range presets {
			fmt.Printf("  [%d] %s\n", i+1, a)
		}
		fmt.Print("Choose attribute (1-3) or type a custom one: ")
		if !in.Scan() {
			return
		}
		choice := strings.TrimSpace(in.Text())
		var a attr.Attribute
		switch choice {
		case "1", "2", "3":
			a = presets[choice[0]-'1']
		default:
			a = attr.Attribute(choice)
		}
		if err := a.Validate(); err != nil {
			fmt.Printf("invalid attribute: %v\n", err)
			continue
		}
		fmt.Print("Message: ")
		if !in.Scan() {
			return
		}
		msg := in.Text()
		seq, err := sd.Deposit(mwsConn, a, []byte(msg))
		if err != nil {
			fmt.Printf("deposit failed: %v\n", err)
			continue
		}
		fmt.Printf("✓ deposited as message #%d (timestamp appended automatically)\n", seq)
	}
}
