// Command mwsd runs the Message Warehousing Service and provides its
// administrative operations (§I: "administrative operations to manage
// client identities").
//
// Serve:
//
//	mwsd -dir /var/lib/mws -addr :7701 -shared-key-file mws-pkg.key serve
//
// Administer (against the same -dir, while the server is stopped):
//
//	mwsd -dir /var/lib/mws register-device meter-001
//	mwsd -dir /var/lib/mws register-client c-services -password-file pw.txt -pubkey rc.pem
//	mwsd -dir /var/lib/mws grant c-services ELECTRIC-APTCOMPLEX-SV-CA
//	mwsd -dir /var/lib/mws revoke c-services ELECTRIC-APTCOMPLEX-SV-CA
//	mwsd -dir /var/lib/mws table
//
// Probe a running server (negotiates wire tracing, emits a traced ping):
//
//	mwsd -addr 127.0.0.1:7701 ping
//
// The shared-key file holds the 32-byte MWS–PKG ticket key in hex; it is
// created on first use and must be copied to the PKG (the paper assumes
// this key is established at setup).
package main

import (
	"context"
	"crypto/rand"
	"crypto/rsa"
	"crypto/x509"
	"encoding/hex"
	"encoding/pem"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mwskit/internal/attr"
	"mwskit/internal/metrics"
	"mwskit/internal/mws"
	"mwskit/internal/obsv"
	"mwskit/internal/policy"
	"mwskit/internal/policyrule"
	"mwskit/internal/storage"
	"mwskit/internal/wire"
)

func main() {
	dir := flag.String("dir", "./mws-data", "data directory")
	addr := flag.String("addr", "127.0.0.1:7701", "listen address for serve")
	keyFile := flag.String("shared-key-file", "mws-pkg.key", "hex-encoded 32-byte MWS–PKG shared key (created if absent)")
	passwordFile := flag.String("password-file", "", "file holding a client password (register-client)")
	pubKeyFile := flag.String("pubkey", "", "PEM file with the client's RSA public key (register-client)")
	window := flag.Duration("freshness", 2*time.Minute, "accepted timestamp skew")
	rulesFile := flag.String("rules-file", "", "optional XACML-style rule file applied at retrieval")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline (0 disables)")
	idleTimeout := flag.Duration("idle-timeout", 5*time.Minute, "disconnect connections idle this long (0 disables)")
	maxConns := flag.Int("max-conns", 4096, "max concurrently served connections (0 = unlimited)")
	statsEvery := flag.Duration("stats-interval", time.Minute, "per-op stats log period (0 disables)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /traces, /healthz, /debug/pprof on this address (empty = disabled; bind localhost — it exposes profiles and span attributes)")
	traceRing := flag.Int("trace-ring", 4096, "finished-span ring capacity for /traces and the TTrace op")
	slowReq := flag.Duration("slow-request", time.Second, "log the span tree of requests slower than this (0 disables)")
	storageBackend := flag.String("storage", "", "storage backend: "+strings.Join(storage.Backends(), ", ")+" (empty = auto: keep an existing sharded layout, else local)")
	shards := flag.Int("shards", 0, "partition count for -storage sharded (0 = default 8; fixed at directory creation)")
	groupCommit := flag.Duration("group-commit", storage.DefaultGroupCommit, "extra fsync batching delay for -storage sharded (0 = batch only appends that land while a sync is in flight)")
	compactEvery := flag.Duration("compact-every", 10*time.Minute, "background KV compaction sweep period (0 disables)")
	compactMinMuts := flag.Uint64("compact-min-mutations", 4096, "compact a KV store only after this many logged mutations (and mutations > 2x live keys)")
	flag.Parse()

	logger, err := newLogger(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mwsd:", err)
		os.Exit(1)
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"serve"}
	}
	// ping only needs the network; don't touch the data directory or the
	// shared-key file for it.
	if args[0] == "ping" {
		if err := ping(*addr); err != nil {
			die(logger, "ping", err)
		}
		return
	}

	sharedKey, err := loadOrCreateKey(*keyFile, logger)
	if err != nil {
		die(logger, "shared key", err)
	}
	tracer := obsv.NewTracer("mws", *traceRing, *slowReq, logger)
	svc, err := mws.New(mws.Config{
		Dir:             *dir,
		MWSPKGKey:       sharedKey,
		FreshnessWindow: *window,
		RequestTimeout:  *reqTimeout,
		Logger:          logger,
		Tracer:          tracer,
		Storage: storage.Options{
			Backend:     *storageBackend,
			Shards:      *shards,
			GroupCommit: *groupCommit,
		},
	})
	if err != nil {
		die(logger, "open service", err)
	}
	defer svc.Close()

	if *rulesFile != "" {
		text, err := os.ReadFile(*rulesFile)
		if err != nil {
			die(logger, "rules file", err)
		}
		rules, err := policyrule.Parse(string(text))
		if err != nil {
			die(logger, "rules file", err)
		}
		if err := svc.SetRules(rules); err != nil {
			die(logger, "rules file", err)
		}
		logger.Info("loaded policy rules", "count", len(rules.Rules), "file", *rulesFile)
	}

	switch args[0] {
	case "serve":
		srv, bound, err := svc.ListenAndServe(*addr,
			wire.WithIdleTimeout(*idleTimeout), wire.WithMaxConns(*maxConns))
		if err != nil {
			die(logger, "listen", err)
		}
		logger.Info("serving MWS", "addr", bound.String(), "dir", *dir,
			"request_timeout", *reqTimeout, "max_conns", *maxConns,
			"storage_shards", svc.Store().Shards())
		svc.StartAutoCompact(*compactEvery, *compactMinMuts)
		if *debugAddr != "" {
			dsrv, dbound, err := obsv.ServeDebug(*debugAddr, "mws", svc.StatsRegistry(), tracer)
			if err != nil {
				die(logger, "debug listener", err)
			}
			logger.Info("debug listener up", "addr", dbound.String(),
				"endpoints", "/metrics /healthz /traces /debug/pprof")
			defer dsrv.Close()
		}
		stopStats := logStatsPeriodically(*statsEvery, logger, srv, svc.Metrics)
		waitForSignal()
		stopStats()
		if err := srv.Close(); err != nil {
			die(logger, "shutdown", err)
		}
	case "register-device":
		if len(args) != 2 {
			die(logger, "usage", errors.New("register-device <device-id>"))
		}
		key, err := svc.RegisterDevice(args[1])
		if err != nil {
			die(logger, "register-device", err)
		}
		fmt.Printf("device %s registered; MAC key (deliver out of band):\n%s\n", args[1], hex.EncodeToString(key))
	case "register-client":
		if len(args) != 2 || *passwordFile == "" || *pubKeyFile == "" {
			die(logger, "usage", errors.New("register-client <id> -password-file f -pubkey f.pem"))
		}
		pw, err := os.ReadFile(*passwordFile)
		if err != nil {
			die(logger, "register-client", err)
		}
		pub, err := readRSAPublicKey(*pubKeyFile)
		if err != nil {
			die(logger, "register-client", err)
		}
		if err := svc.RegisterClient(args[1], []byte(strings.TrimSpace(string(pw))), pub); err != nil {
			die(logger, "register-client", err)
		}
		fmt.Printf("client %s registered\n", args[1])
	case "grant":
		if len(args) != 3 {
			die(logger, "usage", errors.New("grant <client-id> <attribute>"))
		}
		aid, err := svc.Grant(args[1], attr.Attribute(args[2]))
		if err != nil {
			die(logger, "grant", err)
		}
		fmt.Printf("granted; attribute ID %d\n", aid)
	case "revoke":
		if len(args) != 3 {
			die(logger, "usage", errors.New("revoke <client-id> <attribute>"))
		}
		if err := svc.Revoke(args[1], attr.Attribute(args[2])); err != nil {
			die(logger, "revoke", err)
		}
		fmt.Println("revoked")
	case "table":
		fmt.Print(policy.FormatTable(svc.PolicyTable()))
	default:
		die(logger, "command", fmt.Errorf("unknown command %q", args[0]))
	}
}

// newLogger builds the daemon-wide structured logger. Every subsystem —
// serve loop, stats ticker, slow-request dumps, fatal paths — shares it,
// so one -log-level flag governs the whole process.
func newLogger(level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("invalid -log-level %q: %w", level, err)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}

// die logs a fatal error through the unified logger and exits non-zero.
func die(logger *slog.Logger, stage string, err error) {
	logger.Error("fatal", "stage", stage, "err", err)
	os.Exit(1)
}

// ping dials a running server, negotiates wire tracing, and sends one
// traced TPing. The printed trace ID can then be queried back via the
// TTrace op or the server's /traces debug endpoint — CI uses this to
// populate the trace ring before scraping it.
func ping(addr string) error {
	c, err := wire.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	ctx := context.Background()
	v2, err := c.EnableTrace(ctx)
	if err != nil {
		return err
	}
	tracer := obsv.NewTracer("mwsd-ping", 16, 0, nil)
	tctx, root := tracer.StartRoot(ctx, "ping")
	start := time.Now()
	resp, err := c.Do(wire.Frame{Type: wire.TPing, Trace: obsv.ContextTrace(tctx)})
	rtt := time.Since(start)
	root.End()
	if err != nil {
		return err
	}
	if resp.Type != wire.TPong {
		return fmt.Errorf("unexpected response type %d", resp.Type)
	}
	fmt.Printf("pong from %s in %v (tracing=%v trace_id=%d)\n", addr, rtt, v2, root.Context().TraceID)
	return nil
}

func loadOrCreateKey(path string, logger *slog.Logger) ([]byte, error) {
	if raw, err := os.ReadFile(path); err == nil {
		key, err := hex.DecodeString(strings.TrimSpace(string(raw)))
		if err != nil || len(key) != 32 {
			return nil, fmt.Errorf("mwsd: %s: invalid key material", path)
		}
		return key, nil
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, []byte(hex.EncodeToString(key)+"\n"), 0o600); err != nil {
		return nil, err
	}
	logger.Info("created shared key file — copy it to the PKG", "file", path)
	return key, nil
}

// rsaPub aliases the RSA public key type for terse parsing code.
type rsaPub = rsa.PublicKey

func readRSAPublicKey(path string) (pub *rsaPub, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	block, _ := pem.Decode(raw)
	if block == nil {
		return nil, fmt.Errorf("mwsd: %s: not PEM", path)
	}
	parsed, err := x509.ParsePKIXPublicKey(block.Bytes)
	if err != nil {
		return nil, err
	}
	rp, ok := parsed.(*rsaPub)
	if !ok {
		return nil, fmt.Errorf("mwsd: %s: not an RSA key", path)
	}
	return rp, nil
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}

// logStatsPeriodically emits one per-op stats line every interval, giving
// operators the latency/error surface without scraping. The returned stop
// function halts the ticker.
func logStatsPeriodically(interval time.Duration, logger *slog.Logger, srv *wire.Server, snap func() map[string]metrics.OpSnapshot) func() {
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				logger.Info("mws stats", "conns", srv.ConnCount(), "ops", metrics.FormatSnapshot(snap()))
			case <-done:
				return
			}
		}
	}()
	return func() { close(done) }
}
