// Command mwsd runs the Message Warehousing Service and provides its
// administrative operations (§I: "administrative operations to manage
// client identities").
//
// Serve:
//
//	mwsd -dir /var/lib/mws -addr :7701 -shared-key-file mws-pkg.key serve
//
// Administer (against the same -dir, while the server is stopped):
//
//	mwsd -dir /var/lib/mws register-device meter-001
//	mwsd -dir /var/lib/mws register-client c-services -password-file pw.txt -pubkey rc.pem
//	mwsd -dir /var/lib/mws grant c-services ELECTRIC-APTCOMPLEX-SV-CA
//	mwsd -dir /var/lib/mws revoke c-services ELECTRIC-APTCOMPLEX-SV-CA
//	mwsd -dir /var/lib/mws table
//
// The shared-key file holds the 32-byte MWS–PKG ticket key in hex; it is
// created on first use and must be copied to the PKG (the paper assumes
// this key is established at setup).
package main

import (
	"crypto/rand"
	"crypto/rsa"
	"crypto/x509"
	"encoding/hex"
	"encoding/pem"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mwskit/internal/attr"
	"mwskit/internal/metrics"
	"mwskit/internal/mws"
	"mwskit/internal/policy"
	"mwskit/internal/policyrule"
	"mwskit/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mwsd: ")
	dir := flag.String("dir", "./mws-data", "data directory")
	addr := flag.String("addr", "127.0.0.1:7701", "listen address for serve")
	keyFile := flag.String("shared-key-file", "mws-pkg.key", "hex-encoded 32-byte MWS–PKG shared key (created if absent)")
	passwordFile := flag.String("password-file", "", "file holding a client password (register-client)")
	pubKeyFile := flag.String("pubkey", "", "PEM file with the client's RSA public key (register-client)")
	window := flag.Duration("freshness", 2*time.Minute, "accepted timestamp skew")
	rulesFile := flag.String("rules-file", "", "optional XACML-style rule file applied at retrieval")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline (0 disables)")
	idleTimeout := flag.Duration("idle-timeout", 5*time.Minute, "disconnect connections idle this long (0 disables)")
	maxConns := flag.Int("max-conns", 4096, "max concurrently served connections (0 = unlimited)")
	statsEvery := flag.Duration("stats-interval", time.Minute, "per-op stats log period (0 disables)")
	flag.Parse()

	sharedKey, err := loadOrCreateKey(*keyFile)
	if err != nil {
		log.Fatal(err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	svc, err := mws.New(mws.Config{
		Dir:             *dir,
		MWSPKGKey:       sharedKey,
		FreshnessWindow: *window,
		RequestTimeout:  *reqTimeout,
		Logger:          logger,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	if *rulesFile != "" {
		text, err := os.ReadFile(*rulesFile)
		if err != nil {
			log.Fatal(err)
		}
		rules, err := policyrule.Parse(string(text))
		if err != nil {
			log.Fatal(err)
		}
		if err := svc.SetRules(rules); err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded %d policy rules from %s", len(rules.Rules), *rulesFile)
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"serve"}
	}
	switch args[0] {
	case "serve":
		srv, bound, err := svc.ListenAndServe(*addr,
			wire.WithIdleTimeout(*idleTimeout), wire.WithMaxConns(*maxConns))
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("serving MWS on %s (data in %s, request timeout %v, max conns %d)",
			bound, *dir, *reqTimeout, *maxConns)
		stopStats := logStatsPeriodically(*statsEvery, logger, srv, svc.Metrics)
		waitForSignal()
		stopStats()
		if err := srv.Close(); err != nil {
			log.Fatal(err)
		}
	case "register-device":
		if len(args) != 2 {
			log.Fatal("usage: register-device <device-id>")
		}
		key, err := svc.RegisterDevice(args[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("device %s registered; MAC key (deliver out of band):\n%s\n", args[1], hex.EncodeToString(key))
	case "register-client":
		if len(args) != 2 || *passwordFile == "" || *pubKeyFile == "" {
			log.Fatal("usage: register-client <id> -password-file f -pubkey f.pem")
		}
		pw, err := os.ReadFile(*passwordFile)
		if err != nil {
			log.Fatal(err)
		}
		pub, err := readRSAPublicKey(*pubKeyFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := svc.RegisterClient(args[1], []byte(strings.TrimSpace(string(pw))), pub); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("client %s registered\n", args[1])
	case "grant":
		if len(args) != 3 {
			log.Fatal("usage: grant <client-id> <attribute>")
		}
		aid, err := svc.Grant(args[1], attr.Attribute(args[2]))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("granted; attribute ID %d\n", aid)
	case "revoke":
		if len(args) != 3 {
			log.Fatal("usage: revoke <client-id> <attribute>")
		}
		if err := svc.Revoke(args[1], attr.Attribute(args[2])); err != nil {
			log.Fatal(err)
		}
		fmt.Println("revoked")
	case "table":
		fmt.Print(policy.FormatTable(svc.PolicyTable()))
	default:
		log.Fatalf("unknown command %q", args[0])
	}
}

func loadOrCreateKey(path string) ([]byte, error) {
	if raw, err := os.ReadFile(path); err == nil {
		key, err := hex.DecodeString(strings.TrimSpace(string(raw)))
		if err != nil || len(key) != 32 {
			return nil, fmt.Errorf("mwsd: %s: invalid key material", path)
		}
		return key, nil
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, []byte(hex.EncodeToString(key)+"\n"), 0o600); err != nil {
		return nil, err
	}
	log.Printf("created shared key file %s — copy it to the PKG", path)
	return key, nil
}

// rsaPub aliases the RSA public key type for terse parsing code.
type rsaPub = rsa.PublicKey

func readRSAPublicKey(path string) (pub *rsaPub, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	block, _ := pem.Decode(raw)
	if block == nil {
		return nil, fmt.Errorf("mwsd: %s: not PEM", path)
	}
	parsed, err := x509.ParsePKIXPublicKey(block.Bytes)
	if err != nil {
		return nil, err
	}
	rp, ok := parsed.(*rsaPub)
	if !ok {
		return nil, fmt.Errorf("mwsd: %s: not an RSA key", path)
	}
	return rp, nil
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}

// logStatsPeriodically emits one per-op stats line every interval, giving
// operators the latency/error surface without scraping. The returned stop
// function halts the ticker.
func logStatsPeriodically(interval time.Duration, logger *slog.Logger, srv *wire.Server, snap func() map[string]metrics.OpSnapshot) func() {
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				logger.Info("mws stats", "conns", srv.ConnCount(), "ops", metrics.FormatSnapshot(snap()))
			case <-done:
				return
			}
		}
	}()
	return func() { close(done) }
}
