#!/bin/sh
# Tier-1 gate: everything a PR must pass before merge (see ROADMAP.md).
set -eux

cd "$(dirname "$0")/.."

# Formatting: the tree must be gofmt-clean.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...

# mwslint: the project's confidentiality- and concurrency-invariant
# analyzers (see DESIGN.md "Static analysis"). Any unsuppressed finding
# fails the build, and so does a suppression count above the checked-in
# baseline — silencing a finding is a reviewed change, not a drive-by.
# The run is timed because the taint and lock analyzers iterate
# whole-program fixpoints: soft budget 30s, warn (don't fail) when
# exceeded; -timings breaks the wall time down per analyzer.
mwslint_start=$(date +%s)
go run ./cmd/mwslint -timings -baseline scripts/lint_baseline.json ./...
mwslint_elapsed=$(( $(date +%s) - mwslint_start ))
echo "mwslint: ${mwslint_elapsed}s (soft budget 30s)"
if [ "$mwslint_elapsed" -gt 30 ]; then
	echo "warning: mwslint exceeded its 30s soft budget" >&2
fi

go test -race ./...

# Opt-in hot-path benchmark: MWSBENCH=1 runs the end-to-end load
# generator (phase 0 offline microbenchmarks included) and writes
# BENCH_PR10.json — phase 0 now exercises the fixed-limb Montgomery
# field core (the committed reference run is the bf80 preset: cold
# deposit preparation 77.9 → 402.5 msgs/s over the math/big backend it
# replaced). Off by default — it adds minutes on the bf80 preset.
if [ "${MWSBENCH:-0}" = "1" ]; then
	go run ./cmd/mwsbench -preset "${MWSBENCH_PRESET:-test}" -meters 10 \
		-messages 120 -nonce-epoch 64 -compare-storage \
		-json BENCH_PR10.json
fi
