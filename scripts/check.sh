#!/bin/sh
# Tier-1 gate: everything a PR must pass before merge (see ROADMAP.md).
set -eux

cd "$(dirname "$0")/.."

# Formatting: the tree must be gofmt-clean.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...

# mwslint: the project's confidentiality-invariant analyzers (see
# DESIGN.md "Static analysis"). Any unsuppressed finding fails the build.
go run ./cmd/mwslint ./...

go test -race ./...
