#!/bin/sh
# Shard smoke: boot a sharded mwsd (8 partitions) against a live pkgd,
# deposit across more attributes than shards, retrieve, SIGKILL the
# warehouse mid-flight state, restart it, and prove every acknowledged
# deposit survived recovery. Finishes with a /metrics scrape asserting
# the per-shard telemetry series are live (saved to $SCRAPE_OUT, default
# shard-metrics-scrape.txt, for CI artifact upload).
#
# The admin steps run before the first serve, so the data directory is
# created in the v1 local layout and `serve -storage sharded -shards 8`
# exercises the transparent resharding migration too.
set -eux

cd "$(dirname "$0")/.."

MWS_ADDR=127.0.0.1:7791
PKG_ADDR=127.0.0.1:7792
DEBUG_ADDR=127.0.0.1:7793
SCRAPE_OUT=${SCRAPE_OUT:-shard-metrics-scrape.txt}
ATTRS="ELECTRIC-SMOKE-00 ELECTRIC-SMOKE-01 WATER-SMOKE-02 WATER-SMOKE-03 \
GAS-SMOKE-04 GAS-SMOKE-05 HEAT-SMOKE-06 HEAT-SMOKE-07 ELECTRIC-SMOKE-08 \
WATER-SMOKE-09"

W=$(mktemp -d)
MWSD_PID=""
PKGD_PID=""
cleanup() {
	[ -n "$MWSD_PID" ] && kill "$MWSD_PID" 2>/dev/null || true
	[ -n "$PKGD_PID" ] && kill "$PKGD_PID" 2>/dev/null || true
	rm -rf "$W"
}
trap cleanup EXIT

go build -o "$W/mwsd" ./cmd/mwsd
go build -o "$W/pkgd" ./cmd/pkgd
go build -o "$W/smartdev" ./cmd/smartdev
go build -o "$W/rcclient" ./cmd/rcclient

MWSD="$W/mwsd -dir $W/mws-data -shared-key-file $W/mws-pkg.key -addr $MWS_ADDR"

# Provision in the v1 layout: one device, one retrieving client granted
# every attribute.
MAC_KEY=$($MWSD register-device meter-001 | tail -1)
printf 'smoke-pw\n' > "$W/pw.txt"
(cd "$W" && ./rcclient keygen -rsa-key rc.key -pubkey rc.pem)
$MWSD -password-file "$W/pw.txt" -pubkey "$W/rc.pem" register-client c-smoke
for a in $ATTRS; do
	$MWSD grant c-smoke "$a"
done

"$W/pkgd" -dir "$W/pkg-data" -shared-key-file "$W/mws-pkg.key" \
	-addr $PKG_ADDR -preset test &
PKGD_PID=$!

start_mwsd() {
	$MWSD -storage sharded -shards 8 -debug-addr $DEBUG_ADDR serve &
	MWSD_PID=$!
	for _ in $(seq 1 50); do
		curl -sf "http://$DEBUG_ADDR/healthz" >/dev/null 2>&1 && return 0
		sleep 0.2
	done
	echo "mwsd did not come up" >&2
	return 1
}

retrieve_count() {
	(cd "$W" && ./rcclient -id c-smoke -password-file pw.txt -rsa-key rc.key \
		-mws $MWS_ADDR -pkg $PKG_ADDR) | grep -c '^#'
}

# Round 1: the v1 directory reshards on boot, then takes deposits across
# more attributes than shards. The first deposit retries while pkgd
# finishes booting (no health endpoint on the PKG).
start_mwsd
N=0
for a in $ATTRS; do
	ok=""
	for _ in $(seq 1 25); do
		if "$W/smartdev" -id meter-001 -mac-key "$MAC_KEY" -mws $MWS_ADDR \
			-pkg $PKG_ADDR -attr "$a" -message "reading=$N"; then
			ok=1
			break
		fi
		sleep 0.2
	done
	[ -n "$ok" ] || { echo "deposit to $a failed" >&2; exit 1; }
	N=$((N + 1))
done
GOT=$(retrieve_count)
[ "$GOT" -eq "$N" ] || { echo "pre-kill retrieve: got $GOT want $N" >&2; exit 1; }

# Kill the warehouse without ceremony; every acknowledged deposit must
# already be on disk (SyncAlways + per-shard group commit).
kill -9 "$MWSD_PID"
wait "$MWSD_PID" 2>/dev/null || true
MWSD_PID=""

# Round 2: recover, verify nothing acked was lost, and keep working.
start_mwsd
GOT=$(retrieve_count)
[ "$GOT" -eq "$N" ] || { echo "post-kill retrieve: got $GOT want $N" >&2; exit 1; }
"$W/smartdev" -id meter-001 -mac-key "$MAC_KEY" -mws $MWS_ADDR \
	-pkg $PKG_ADDR -attr ELECTRIC-SMOKE-00 -message "reading=post-restart"
GOT=$(retrieve_count)
[ "$GOT" -eq $((N + 1)) ] || { echo "post-restart retrieve: got $GOT want $((N + 1))" >&2; exit 1; }

# The per-shard series must be live on /metrics, with real appends
# spread beyond a single shard.
curl -sf "http://$DEBUG_ADDR/metrics" > "$SCRAPE_OUT"
grep -q 'storage_shard_appends_total{shard="' "$SCRAPE_OUT"
grep -q 'storage_shard_messages{shard="' "$SCRAPE_OUT"
SHARDS_HIT=$(grep -c 'storage_shard_messages{shard="' "$SCRAPE_OUT")
[ "$SHARDS_HIT" -eq 8 ] || { echo "expected 8 shard series, saw $SHARDS_HIT" >&2; exit 1; }

echo "shard smoke OK: $((N + 1)) deposits across 8 shards survived SIGKILL; scrape in $SCRAPE_OUT"
