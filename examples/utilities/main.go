// Utilities: the paper's Figure 1 scenario at fleet scale. A simulated
// apartment-complex fleet of electric, water and gas meters deposits
// readings; three companies with different contracts retrieve them:
//
//	C-Services              — full-service retailer, sees all meters
//	Electric-and-Gas-Co     — sees electric + gas
//	Water-and-Resources-Co  — sees water only
//
//	go run ./examples/utilities [-meters 4] [-rounds 3]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mwskit/internal/core"
	"mwskit/internal/device"
	"mwskit/internal/policy"
	"mwskit/internal/rclient"
	"mwskit/internal/sim"
	"mwskit/internal/wal"
)

func main() {
	log.SetFlags(0)
	meters := flag.Int("meters", 4, "meters per utility kind")
	rounds := flag.Int("rounds", 3, "emission rounds")
	flag.Parse()

	dir, err := os.MkdirTemp("", "mwskit-utilities-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	dep, err := core.NewDeployment(core.DeploymentConfig{Dir: dir, Preset: "test", Sync: wal.SyncNever})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	if err := dep.Start(); err != nil {
		log.Fatal(err)
	}
	mwsConn, err := dep.DialMWS()
	if err != nil {
		log.Fatal(err)
	}
	defer mwsConn.Close()
	pkgConn, err := dep.DialPKG()
	if err != nil {
		log.Fatal(err)
	}
	defer pkgConn.Close()

	// Build and register the meter fleet.
	fleet := sim.NewFleet(sim.FleetConfig{
		Seed:    2010,
		PerSite: map[sim.MeterKind]int{sim.Electric: *meters, sim.Water: *meters, sim.Gas: *meters},
	})
	devices := make(map[string]*device.Device, len(fleet.Meters))
	for _, m := range fleet.Meters {
		key, err := dep.MWS.RegisterDevice(m.ID)
		if err != nil {
			log.Fatal(err)
		}
		sd, err := dep.NewDevice(m.ID, key)
		if err != nil {
			log.Fatal(err)
		}
		devices[m.ID] = sd
	}
	fmt.Printf("fleet: %d meters across attributes %v\n", len(fleet.Meters), fleet.Attributes())

	// Enroll the companies with the Figure 1 access matrix.
	scenario := sim.Figure1Scenario([]string{"APTCOMPLEX-SV-CA"})
	companies := map[string]*rclient.Client{}
	for name, attrs := range scenario.Companies {
		rc, err := dep.EnrollClient(name, []byte("pw-"+name))
		if err != nil {
			log.Fatal(err)
		}
		for _, a := range attrs {
			if _, err := dep.Grant(name, a); err != nil {
				log.Fatal(err)
			}
		}
		companies[name] = rc
	}

	// Print the resulting policy table — the live Table 1.
	fmt.Println("\nPolicy database (the paper's Table 1):")
	fmt.Print(policy.FormatTable(dep.MWS.PolicyTable()))

	// Deposit rounds.
	total := 0
	for r := 0; r < *rounds; r++ {
		for _, em := range fleet.Round() {
			if _, err := devices[em.Meter.ID].Deposit(mwsConn, em.Attribute, em.Payload); err != nil {
				log.Fatalf("%s: %v", em.Meter.ID, err)
			}
			total++
		}
	}
	fmt.Printf("\ndeposited %d encrypted messages\n", total)

	// Each company retrieves what its contract allows.
	for _, name := range []string{"C-Services", "Electric-and-Gas-Co", "Water-and-Resources-Co"} {
		msgs, err := companies[name].RetrieveAndDecrypt(mwsConn, pkgConn, 0, 0)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		kinds := map[string]int{}
		for _, m := range msgs {
			kinds[kindOf(m.DeviceID)]++
		}
		fmt.Printf("%-24s %3d messages  %v\n", name+":", len(msgs), kinds)
	}
}

// kindOf extracts the utility kind from a simulator meter ID
// (SITE-KIND-meter-NNN).
func kindOf(deviceID string) string {
	for _, k := range []string{"ELECTRIC", "WATER", "GAS"} {
		if containsSegment(deviceID, k) {
			return k
		}
	}
	return "?"
}

func containsSegment(s, seg string) bool {
	for i := 0; i+len(seg) <= len(s); i++ {
		if s[i:i+len(seg)] == seg {
			return true
		}
	}
	return false
}
