// Quickstart: the smallest complete mwskit program. It stands up a full
// deployment (MWS + PKG on loopback TCP), registers one smart meter and
// one utility company, deposits an encrypted reading toward an attribute,
// and retrieves + decrypts it at the receiving client — the end-to-end
// confidential path of the paper in ~60 lines of application code.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"mwskit/internal/core"
	"mwskit/internal/wal"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "mwskit-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Stand up the server side: Message Warehousing Service + PKG.
	dep, err := core.NewDeployment(core.DeploymentConfig{
		Dir:    dir,
		Preset: "test", // fast parameters; use "bf80"/"bf112" in production
		Sync:   wal.SyncNever,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	if err := dep.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MWS listening on %s, PKG on %s\n", dep.MWSAddr(), dep.PKGAddr())

	// 2. Register a smart meter (depositing client).
	macKey, err := dep.MWS.RegisterDevice("smart-meter-0042")
	if err != nil {
		log.Fatal(err)
	}
	meter, err := dep.NewDevice("smart-meter-0042", macKey)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Enroll a utility company (receiving client) and grant it the
	//    attribute the meter will encrypt toward. The meter never learns
	//    who holds the attribute; the company never learns the attribute.
	company, err := dep.EnrollClient("c-services", []byte("correct horse battery staple"))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := dep.Grant("c-services", "ELECTRIC-APTCOMPLEX-SV-CA"); err != nil {
		log.Fatal(err)
	}

	// 4. Deposit an encrypted reading.
	mwsConn, err := dep.DialMWS()
	if err != nil {
		log.Fatal(err)
	}
	defer mwsConn.Close()
	seq, err := meter.Deposit(mwsConn, "ELECTRIC-APTCOMPLEX-SV-CA",
		[]byte(`{"kwh": 42.7, "period": "2010-07"}`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("meter deposited message #%d (the MWS stores only ciphertext)\n", seq)

	// 5. Retrieve and decrypt at the company.
	pkgConn, err := dep.DialPKG()
	if err != nil {
		log.Fatal(err)
	}
	defer pkgConn.Close()
	msgs, err := company.RetrieveAndDecrypt(mwsConn, pkgConn, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range msgs {
		fmt.Printf("company received #%d from %s: %s\n", m.Seq, m.DeviceID, m.Payload)
	}
}
