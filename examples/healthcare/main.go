// Healthcare: role-based secure messaging on the mwskit API — the
// application scenario of the paper's related work [3] (Casassa Mont et
// al., "A Flexible Role-based Secure Messaging Service"), rebuilt on the
// warehouse model. Medical devices deposit observations toward *role*
// attributes (CARDIOLOGIST-WARD7, NURSE-WARD7, PHARMACY-CENTRAL); staff
// clients hold roles, not device lists, and revoking a role instantly
// stops future access — no device is reconfigured.
//
//	go run ./examples/healthcare
package main

import (
	"fmt"
	"log"
	"os"

	"mwskit/internal/attr"
	"mwskit/internal/core"
	"mwskit/internal/wal"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "mwskit-healthcare-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	dep, err := core.NewDeployment(core.DeploymentConfig{Dir: dir, Preset: "test", Sync: wal.SyncNever})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	if err := dep.Start(); err != nil {
		log.Fatal(err)
	}
	mwsConn, err := dep.DialMWS()
	if err != nil {
		log.Fatal(err)
	}
	defer mwsConn.Close()
	pkgConn, err := dep.DialPKG()
	if err != nil {
		log.Fatal(err)
	}
	defer pkgConn.Close()

	const (
		roleCardio   = attr.Attribute("CARDIOLOGIST-WARD7")
		roleNurse    = attr.Attribute("NURSE-WARD7")
		rolePharmacy = attr.Attribute("PHARMACY-CENTRAL")
	)

	// Bedside devices are the depositing clients.
	monitorKey, err := dep.MWS.RegisterDevice("ecg-monitor-bed3")
	if err != nil {
		log.Fatal(err)
	}
	monitor, err := dep.NewDevice("ecg-monitor-bed3", monitorKey)
	if err != nil {
		log.Fatal(err)
	}
	pumpKey, err := dep.MWS.RegisterDevice("infusion-pump-bed3")
	if err != nil {
		log.Fatal(err)
	}
	pump, err := dep.NewDevice("infusion-pump-bed3", pumpKey)
	if err != nil {
		log.Fatal(err)
	}

	// Staff accounts with role grants.
	drWho, err := dep.EnrollClient("dr-who", []byte("gallifrey"))
	if err != nil {
		log.Fatal(err)
	}
	nurseJoy, err := dep.EnrollClient("nurse-joy", []byte("pewter-city"))
	if err != nil {
		log.Fatal(err)
	}
	grants := []struct {
		who  string
		role attr.Attribute
	}{
		{"dr-who", roleCardio},
		{"dr-who", roleNurse}, // physicians also see nursing notes
		{"nurse-joy", roleNurse},
		{"nurse-joy", rolePharmacy},
	}
	for _, g := range grants {
		if _, err := dep.Grant(g.who, g.role); err != nil {
			log.Fatal(err)
		}
	}

	must := func(_ uint64, err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	// The monitor reports an arrhythmia to cardiologists and vitals to
	// nurses; the pump reports to pharmacy and nurses.
	must(monitor.Deposit(mwsConn, roleCardio, []byte(`{"alert":"arrhythmia","bed":3,"hr":162}`)))
	must(monitor.Deposit(mwsConn, roleNurse, []byte(`{"vitals":{"hr":162,"spo2":94},"bed":3}`)))
	must(pump.Deposit(mwsConn, rolePharmacy, []byte(`{"event":"dose-administered","drug":"amiodarone","bed":3}`)))
	must(pump.Deposit(mwsConn, roleNurse, []byte(`{"event":"line-occlusion","bed":3}`)))

	// Role-filtered retrieval.
	drMsgs, err := drWho.RetrieveAndDecrypt(mwsConn, pkgConn, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dr-who (cardiologist+nurse) sees %d messages:\n", len(drMsgs))
	for _, m := range drMsgs {
		fmt.Printf("  #%d %-20s %s\n", m.Seq, m.DeviceID, m.Payload)
	}
	joyMsgs, err := nurseJoy.RetrieveAndDecrypt(mwsConn, pkgConn, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nurse-joy (nurse+pharmacy) sees %d messages:\n", len(joyMsgs))
	for _, m := range joyMsgs {
		fmt.Printf("  #%d %-20s %s\n", m.Seq, m.DeviceID, m.Payload)
	}

	// Shift change: Dr Who rotates off cardiology. One policy row is
	// removed; the monitors are untouched.
	if err := dep.Revoke("dr-who", roleCardio); err != nil {
		log.Fatal(err)
	}
	must(monitor.Deposit(mwsConn, roleCardio, []byte(`{"alert":"arrhythmia-resolved","bed":3}`)))

	lastSeen := drMsgs[len(drMsgs)-1].Seq
	after, err := drWho.RetrieveAndDecrypt(mwsConn, pkgConn, lastSeen+1, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after revoking the cardiology role, dr-who sees %d new cardiology messages (expected 0)\n", len(after))
}
