// Revocation: a walkthrough of security requirement §III(iii) — "when
// access to a message for a receiving client is revoked … the affected
// client should not be able to access future messages sent by that
// particular smart device" — and of the nonce mechanism that makes it
// work without touching any device.
//
// The demo shows three facts:
//
//  1. Before revocation the client reads messages normally.
//
//  2. After revocation, retrieval returns nothing new (policy filter).
//
//  3. Even the private keys the client extracted earlier are useless
//     against new messages, because every message uses a fresh nonce and
//     therefore a fresh IBE identity I = SHA1(A ‖ Nonce).
//
//     go run ./examples/revocation
package main

import (
	"fmt"
	"log"
	"os"

	"mwskit/internal/core"
	"mwskit/internal/wal"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "mwskit-revocation-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	dep, err := core.NewDeployment(core.DeploymentConfig{Dir: dir, Preset: "test", Sync: wal.SyncNever})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	if err := dep.Start(); err != nil {
		log.Fatal(err)
	}
	mwsConn, err := dep.DialMWS()
	if err != nil {
		log.Fatal(err)
	}
	defer mwsConn.Close()
	pkgConn, err := dep.DialPKG()
	if err != nil {
		log.Fatal(err)
	}
	defer pkgConn.Close()

	const attribute = "ELECTRIC-APTCOMPLEX-SV-CA"
	macKey, err := dep.MWS.RegisterDevice("meter")
	if err != nil {
		log.Fatal(err)
	}
	meter, err := dep.NewDevice("meter", macKey)
	if err != nil {
		log.Fatal(err)
	}
	company, err := dep.EnrollClient("c-services", []byte("pw"))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := dep.Grant("c-services", attribute); err != nil {
		log.Fatal(err)
	}

	// (1) Normal operation.
	if _, err := meter.Deposit(mwsConn, attribute, []byte("reading #1 — visible")); err != nil {
		log.Fatal(err)
	}
	ret, err := company.Retrieve(mwsConn, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	keys, _, err := company.FetchKeys(pkgConn, ret)
	if err != nil {
		log.Fatal(err)
	}
	for i := range ret.Items {
		for _, sk := range keys {
			if m, err := company.Decrypt(&ret.Items[i], sk); err == nil {
				fmt.Printf("before revocation: read %q\n", m.Payload)
			}
		}
	}

	// (2) C-Services' contract for the apartment complex ends.
	if err := dep.Revoke("c-services", attribute); err != nil {
		log.Fatal(err)
	}
	fmt.Println("… C-Services revoked; the meter is NOT reconfigured …")

	// The meter keeps depositing, oblivious.
	if _, err := meter.Deposit(mwsConn, attribute, []byte("reading #2 — must stay hidden")); err != nil {
		log.Fatal(err)
	}

	// Policy filter: retrieval returns nothing new.
	after, err := company.RetrieveAndDecrypt(mwsConn, pkgConn, ret.Items[0].Seq+1, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after revocation: retrieval returned %d new messages (expected 0)\n", len(after))

	// (3) Defense in depth: the hoarded key from message #1 cannot open
	// message #2 even if the envelope leaks, because #2 has a new nonce.
	granted, err := dep.EnrollClient("auditor", []byte("pw2"))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := dep.Grant("auditor", attribute); err != nil {
		log.Fatal(err)
	}
	leak, err := granted.Retrieve(mwsConn, ret.Items[0].Seq+1, 0)
	if err != nil {
		log.Fatal(err)
	}
	if len(leak.Items) != 1 {
		log.Fatalf("auditor should see exactly the new message, got %d", len(leak.Items))
	}
	failed := 0
	for _, sk := range keys { // the OLD keys C-Services extracted
		if _, err := company.Decrypt(&leak.Items[0], sk); err != nil {
			failed++
		}
	}
	fmt.Printf("old private keys against the new message: %d/%d failed (nonce-fresh identities)\n", failed, len(keys))
}
