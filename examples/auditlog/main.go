// Auditlog: an encrypted, searchable audit log on the mwskit API — the
// scenario of the paper's related work [1] (Waters, Balfanz, Durfee,
// Smetters, "Building an Encrypted and Searchable Audit Log"). Devices
// deposit audit events encrypted toward an AUDIT attribute and tag each
// event with searchable keywords (PEKS). An auditor can later ask the
// warehouse for "all events about user=mallory" — the warehouse filters
// by testing encrypted tags against a PKG-issued trapdoor, learning
// neither the log contents nor the search terms.
//
//	go run ./examples/auditlog
package main

import (
	"fmt"
	"log"
	"os"

	"mwskit/internal/core"
	"mwskit/internal/wal"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "mwskit-auditlog-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	dep, err := core.NewDeployment(core.DeploymentConfig{Dir: dir, Preset: "test", Sync: wal.SyncNever})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	if err := dep.Start(); err != nil {
		log.Fatal(err)
	}
	mwsConn, err := dep.DialMWS()
	if err != nil {
		log.Fatal(err)
	}
	defer mwsConn.Close()
	pkgConn, err := dep.DialPKG()
	if err != nil {
		log.Fatal(err)
	}
	defer pkgConn.Close()

	// The logging host signs with an IBE key — no shared MAC secret.
	logger, err := dep.NewSigningDevice("auth-server-01")
	if err != nil {
		log.Fatal(err)
	}
	auditor, err := dep.EnrollClient("auditor", []byte("four-eyes"))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := dep.Grant("auditor", "AUDIT-CENTRAL"); err != nil {
		log.Fatal(err)
	}

	// Deposit audit events with searchable keywords.
	events := []struct {
		body     string
		keywords []string
	}{
		{`{"ev":"login","user":"alice","ok":true}`, []string{"login", "user=alice"}},
		{`{"ev":"login","user":"mallory","ok":false}`, []string{"login", "login-failure", "user=mallory"}},
		{`{"ev":"sudo","user":"mallory","cmd":"cat /etc/shadow"}`, []string{"sudo", "user=mallory"}},
		{`{"ev":"logout","user":"alice"}`, []string{"logout", "user=alice"}},
	}
	for _, e := range events {
		if _, err := logger.DepositTagged(mwsConn, "AUDIT-CENTRAL", []byte(e.body), e.keywords); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("deposited %d encrypted, keyword-tagged audit events\n", len(events))

	// The auditor investigates mallory: bootstrap a session, fetch the
	// trapdoor, and run a filtered retrieval.
	boot, err := auditor.Retrieve(mwsConn, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	trapdoor, err := auditor.FetchTrapdoor(pkgConn, boot, "user=mallory")
	if err != nil {
		log.Fatal(err)
	}
	hits, err := auditor.Search(mwsConn, trapdoor, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warehouse matched %d events for the encrypted query (expected 2)\n", len(hits.Items))

	keys, _, err := auditor.FetchKeys(pkgConn, hits)
	if err != nil {
		log.Fatal(err)
	}
	for i := range hits.Items {
		for _, sk := range keys {
			if m, err := auditor.Decrypt(&hits.Items[i], sk); err == nil {
				fmt.Printf("  #%d %s\n", m.Seq, m.Payload)
				break
			}
		}
	}
}
